// Package serve is the sharded multi-session serving engine: the
// production-shaped deployment of the paper's Fig. 1 system. Instead of one
// goroutine and one time.Ticker per connection (netstream.Serve), the
// engine runs N shard loops, each driven by a single clock that steps every
// session registered on the shard. Sessions are assigned to shards by
// connection hash, and all of a session's per-step work — arrivals, the
// smoothing-buffer step, framing, the batched wire flush — happens on its
// shard goroutine, so sessions need no locks of their own.
//
// Per-session output is completely determined by the clip, the drop policy
// and the negotiated (B, R, D): shard assignment only decides *which*
// goroutine advances a session's private clock, so the byte stream a client
// sees is identical for any shard count (engine_test.go locks this down,
// mirroring the sweep engine's worker-count invariance).
package serve

import (
	"fmt"
	"hash/maphash"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/drop"
	"repro/internal/netstream"
	"repro/internal/stream"
	"repro/internal/trace"
)

// Config parameterizes an Engine.
type Config struct {
	// Rate is R in payload bytes per model step. Required.
	Rate int
	// Shards is the number of shard loops (default GOMAXPROCS).
	Shards int
	// MaxSessions caps concurrently registered sessions across all shards
	// (0 = unlimited); Handle rejects connections beyond it.
	MaxSessions int
	// StepDuration is the wall-clock length of one model step.
	// Defaults to 40ms (25 frames/second).
	StepDuration time.Duration
	// MaxDelay caps the smoothing delay granted to a client, in steps.
	// Defaults to 64.
	MaxDelay int
	// Policy selects the drop policy (default drop.Greedy).
	Policy drop.Factory
	// WriteTimeout bounds each batched wire flush so one dead client
	// cannot stall its shard forever. Defaults to 30s; negative disables.
	WriteTimeout time.Duration
	// OnSessionDone, if non-nil, is called from the shard goroutine after
	// a session ends (err is nil for a clean drain to End).
	OnSessionDone func(s SessionStats, err error)
}

// SessionStats summarizes one finished session.
type SessionStats struct {
	// Remote is the peer address, when known.
	Remote string
	// Steps is the number of model steps the session ran.
	Steps int
	// Dropped is the number of slices shed by the smoothing buffer.
	Dropped int
	// Elapsed is the wall-clock session duration from registration.
	Elapsed time.Duration
}

// Engine serves one clip to many concurrent sessions over shard loops.
type Engine struct {
	cfg      Config
	st       *stream.Stream
	payloads [][]byte // per-slice synthesized payload, shared by all sessions
	shards   []*shard
	seed     maphash.Seed

	active  atomic.Int64
	served  atomic.Int64
	closing atomic.Bool
	sessWG  sync.WaitGroup // live sessions
	loopWG  sync.WaitGroup // shard loops
	stop    sync.Once
}

// New builds an engine for the clip and starts its shard loops.
func New(clip *trace.Clip, weights trace.WeightMap, cfg Config) (*Engine, error) {
	e, err := newEngine(clip, weights, cfg)
	if err != nil {
		return nil, err
	}
	for _, sh := range e.shards {
		e.loopWG.Add(1)
		go sh.run()
	}
	return e, nil
}

// newEngine builds the engine without starting the shard clocks; tests and
// benchmarks drive the shards manually via shard.step.
func newEngine(clip *trace.Clip, weights trace.WeightMap, cfg Config) (*Engine, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("serve: rate %d", cfg.Rate)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.StepDuration <= 0 {
		cfg.StepDuration = 40 * time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 64
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	st, err := trace.WholeFrameStream(clip, weights)
	if err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, st: st, seed: maphash.MakeSeed()}
	// Payload bytes depend only on (slice ID, size): synthesize them once
	// and share across every session instead of per session per step.
	e.payloads = make([][]byte, st.Len())
	for id := 0; id < st.Len(); id++ {
		e.payloads[id] = netstream.SynthPayload(id, st.Slice(id).Size)
	}
	e.shards = make([]*shard, cfg.Shards)
	for i := range e.shards {
		e.shards[i] = &shard{eng: e, quit: make(chan struct{})}
	}
	return e, nil
}

// Rate returns the configured link rate in payload bytes per step.
func (e *Engine) Rate() int { return e.cfg.Rate }

// Shards returns the number of shard loops.
func (e *Engine) Shards() int { return len(e.shards) }

// ActiveSessions returns the number of sessions currently registered.
func (e *Engine) ActiveSessions() int { return int(e.active.Load()) }

// ServedSessions returns the number of sessions finished since start.
func (e *Engine) ServedSessions() int { return int(e.served.Load()) }

// Handle performs the netstream handshake on the caller's goroutine (the
// Hello read blocks), registers the session on a shard chosen by connection
// hash, and returns; the shard clock drives the session to completion and
// closes the connection. On rejection (engine draining, session limit, bad
// handshake) the connection is closed and an error returned.
func (e *Engine) Handle(conn net.Conn) error {
	if e.closing.Load() {
		_ = conn.Close()
		return fmt.Errorf("serve: engine is draining")
	}
	if max := e.cfg.MaxSessions; max > 0 && e.active.Load() >= int64(max) {
		_ = conn.Close()
		return fmt.Errorf("serve: session limit %d reached", max)
	}
	msg, err := netstream.ReadMsg(conn)
	if err != nil {
		_ = conn.Close()
		return fmt.Errorf("serve: reading hello: %w", err)
	}
	if msg.Hello == nil {
		_ = conn.Close()
		return fmt.Errorf("serve: expected hello, got %+v", msg)
	}
	delay, buffer := netstream.NegotiateSession(*msg.Hello, e.cfg.Rate, e.cfg.MaxDelay)
	if err := netstream.WriteAccept(conn, netstream.Accept{
		Rate:         uint32(e.cfg.Rate),
		Delay:        uint32(delay),
		ServerBuffer: uint32(buffer),
		StepMicros:   uint32(e.cfg.StepDuration / time.Microsecond),
	}); err != nil {
		_ = conn.Close()
		return fmt.Errorf("serve: writing accept: %w", err)
	}
	w := io.Writer(conn)
	if e.cfg.WriteTimeout > 0 {
		w = deadlineWriter{c: conn, d: e.cfg.WriteTimeout}
	}
	s, err := e.newSession(w, delay, buffer)
	if err != nil {
		_ = conn.Close()
		return err
	}
	s.conn = conn
	s.remote = conn.RemoteAddr().String()
	sh := e.shards[e.shardOf(s.remote)]
	if !sh.enqueue(s) {
		e.unregister(s)
		_ = conn.Close()
		return fmt.Errorf("serve: engine is draining")
	}
	return nil
}

// shardOf picks the shard for a connection by hashing its remote address.
func (e *Engine) shardOf(remote string) int {
	var h maphash.Hash
	h.SetSeed(e.seed)
	_, _ = h.WriteString(remote) // never fails per hash.Hash contract
	return int(h.Sum64() % uint64(len(e.shards)))
}

// newSession builds a registered session writing to w. The caller (or the
// shard loop, once enqueued) is responsible for eventually calling finish.
func (e *Engine) newSession(w io.Writer, delay, buffer int) (*session, error) {
	snd, err := netstream.NewSender(w, netstream.SenderConfig{
		ServerBuffer: buffer,
		Rate:         e.cfg.Rate,
		Delay:        delay,
		Policy:       e.cfg.Policy,
	})
	if err != nil {
		return nil, err
	}
	s := &session{eng: e, w: w, snd: snd, start: time.Now()}
	e.active.Add(1)
	e.sessWG.Add(1)
	return s, nil
}

// unregister reverses newSession's accounting without counting the session
// as served (used when registration fails after the fact).
func (e *Engine) unregister(s *session) {
	e.active.Add(-1)
	e.sessWG.Done()
}

// Drain stops admitting sessions and waits up to timeout for the in-flight
// ones to finish their streams. It reports whether everything completed.
func (e *Engine) Drain(timeout time.Duration) bool {
	e.closing.Store(true)
	done := make(chan struct{})
	go func() { e.sessWG.Wait(); close(done) }()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}

// Close stops the shard loops, aborting any session still in flight (its
// connection is closed mid-stream). Safe to call after Drain and more than
// once.
func (e *Engine) Close() {
	e.closing.Store(true)
	e.stop.Do(func() {
		for _, sh := range e.shards {
			close(sh.quit)
		}
	})
	e.loopWG.Wait()
}

// errAborted reports a session cut off by Close before its stream drained.
var errAborted = fmt.Errorf("serve: engine closed mid-stream")

// ---------------------------------------------------------------------------
// Shards.
// ---------------------------------------------------------------------------

// shard owns a set of sessions and the single clock that steps them. Only
// the registration queue is shared (guarded by mu); everything else runs on
// the shard goroutine.
type shard struct {
	eng  *Engine
	quit chan struct{}

	mu       sync.Mutex
	draining bool
	incoming []*session

	sessions []*session
}

// enqueue hands a freshly handshaken session to the shard loop. It reports
// false if the shard has already shut down.
func (sh *shard) enqueue(s *session) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.draining {
		return false
	}
	sh.incoming = append(sh.incoming, s)
	return true
}

// run is the shard loop: one ticker, one step for every session per tick.
func (sh *shard) run() {
	defer sh.eng.loopWG.Done()
	tk := time.NewTicker(sh.eng.cfg.StepDuration)
	defer tk.Stop()
	for {
		select {
		case <-sh.quit:
			sh.shutdown()
			return
		case <-tk.C:
			sh.step()
		}
	}
}

// admit moves newly registered sessions onto the shard goroutine.
func (sh *shard) admit() {
	sh.mu.Lock()
	inc := sh.incoming
	sh.incoming = nil
	sh.mu.Unlock()
	sh.sessions = append(sh.sessions, inc...)
}

// step advances every session on the shard by one model step, retiring the
// ones that finished or failed.
//
//smoothvet:deterministic
//smoothvet:noalloc
func (sh *shard) step() {
	sh.admit()
	live := sh.sessions[:0]
	for _, s := range sh.sessions {
		done, err := s.stepOnce()
		if done || err != nil {
			s.finish(err)
		} else {
			live = append(live, s)
		}
	}
	for i := len(live); i < len(sh.sessions); i++ {
		sh.sessions[i] = nil // release finished sessions to the collector
	}
	sh.sessions = live
}

// shutdown aborts every session still registered on the shard.
func (sh *shard) shutdown() {
	sh.mu.Lock()
	sh.draining = true
	inc := sh.incoming
	sh.incoming = nil
	sh.mu.Unlock()
	sh.sessions = append(sh.sessions, inc...)
	for _, s := range sh.sessions {
		s.finish(errAborted)
	}
	sh.sessions = nil
}

// ---------------------------------------------------------------------------
// Sessions.
// ---------------------------------------------------------------------------

// session is one client's paced stream. All fields are owned by the shard
// goroutine after registration; no locking.
type session struct {
	eng     *Engine
	conn    net.Conn // nil in tests/benchmarks that drive a bare writer
	w       io.Writer
	remote  string
	snd     *netstream.Sender
	start   time.Time
	step    int
	dropped int
	offers  []netstream.Offered // reused per step
}

// stepOnce runs one model step: offer this step's arrivals, tick the
// smoothing buffer (which batches and flushes the wire writes), and finish
// with the End marker once the horizon is past and the buffer is drained.
//
//smoothvet:deterministic
//smoothvet:noalloc
func (s *session) stepOnce() (done bool, err error) {
	e := s.eng
	s.offers = s.offers[:0]
	if s.step <= e.st.Horizon() {
		for _, sl := range e.st.ArrivalsAt(s.step) {
			s.offers = append(s.offers, netstream.Offered{Slice: sl, Payload: e.payloads[sl.ID]})
		}
	}
	stats, err := s.snd.Tick(s.offers)
	if err != nil {
		return false, err
	}
	s.dropped += len(stats.Dropped)
	s.step++
	if s.step > e.st.Horizon() && s.snd.Backlog() == 0 {
		return true, netstream.WriteEnd(s.w)
	}
	return false, nil
}

// finish closes the session's connection and reports it done.
func (s *session) finish(err error) {
	if s.conn != nil {
		_ = s.conn.Close()
	}
	e := s.eng
	e.active.Add(-1)
	e.served.Add(1)
	e.sessWG.Done()
	if e.cfg.OnSessionDone != nil {
		e.cfg.OnSessionDone(SessionStats{
			Remote:  s.remote,
			Steps:   s.step,
			Dropped: s.dropped,
			Elapsed: time.Since(s.start),
		}, err)
	}
}

// deadlineWriter arms a write deadline before every flush so a stalled
// client errors out instead of blocking its whole shard.
type deadlineWriter struct {
	c net.Conn
	d time.Duration
}

func (w deadlineWriter) Write(p []byte) (int, error) {
	if err := w.c.SetWriteDeadline(time.Now().Add(w.d)); err != nil {
		return 0, err
	}
	return w.c.Write(p)
}
