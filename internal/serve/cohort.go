package serve

import (
	"sync"

	"repro/internal/netstream"
)

// The cohort schedule cache is the engine's compute-once-serve-many layer.
// Per-session output is a pure function of (clip, rate, delay, buffer,
// policy) — see the determinism contract in the package comment — so when
// many VOD sessions play the same clip at the same negotiated parameters
// there is exactly one schedule to compute and one byte stream to encode.
// A Cohort memoizes both: the full per-step send/drop plan of a session,
// replayed once through the very netstream.Sender + core.Server machinery
// the fallback path uses, with every step's batched wire flush captured
// into one immutable buffer. Serving a cohort session then costs a slice
// index and a Write of pre-encoded bytes; no per-session smoothing buffer,
// drop policy, or encoder exists at all.
//
// Cohorts are immutable after construction and shared by every session of
// the cohort across all shards; the aliasing is safe because nothing ever
// writes to a cohort's wire buffer.

// cohortKey identifies one schedule within an engine. Rate, clip and
// policy are engine-wide, so the negotiated (delay, buffer) pair is the
// full key.
type cohortKey struct {
	delay  int
	buffer int
}

// Cohort is one precomputed serving plan: the concatenated wire bytes of
// every step's batched flush (the final step additionally carries the End
// marker) plus the cumulative drop counts the fallback path would have
// reported step by step.
//
//smoothvet:frozen immutable once published through the cohort cache
type Cohort struct {
	key cohortKey
	// wire holds every step's encoded flush back to back; step i's bytes
	// are wire[off[i]:off[i+1]]. The last step's bytes include the
	// end-of-stream marker, so a completed cohort session's byte stream is
	// exactly wire — proven byte-identical to the per-session Sender path
	// by TestCohortGoldenEquivalence.
	wire []byte
	off  []int32
	// drops[i] is the total number of slices shed by the smoothing buffer
	// through step i inclusive.
	drops []int32
}

// Steps returns the number of model steps a cohort session runs.
func (c *Cohort) Steps() int { return len(c.off) - 1 }

// WireBytes returns the total size of the pre-encoded stream.
func (c *Cohort) WireBytes() int { return len(c.wire) }

// stepBytes returns the pre-encoded flush of one step. The result aliases
// the cohort's immutable buffer; callers must not mutate it.
//
//smoothvet:aliased
//smoothvet:noalloc
func (c *Cohort) stepBytes(step int32) []byte {
	return c.wire[c.off[step]:c.off[step+1]]
}

// droppedThrough returns the slices shed through the given number of
// completed steps.
//
//smoothvet:noalloc
func (c *Cohort) droppedThrough(steps int32) int {
	if steps <= 0 {
		return 0
	}
	return int(c.drops[steps-1])
}

// planRecorder captures a Sender's writes, tracking step boundaries so the
// batched flush of each Tick lands in its own wire span.
type planRecorder struct {
	wire []byte
	off  []int32
}

func (r *planRecorder) Write(p []byte) (int, error) {
	r.wire = append(r.wire, p...)
	return len(p), nil
}

func (r *planRecorder) endStep() { r.off = append(r.off, int32(len(r.wire))) }

// buildCohort replays one full session through the per-session Sender path
// into a recorder, producing the shared plan. It runs once per cohort key
// (under the cache's once), typically at the first Handle that negotiates
// the key's parameters.
func (e *Engine) buildCohort(key cohortKey) (*Cohort, error) {
	rec := &planRecorder{off: []int32{0}}
	snd, err := netstream.NewSender(rec, netstream.SenderConfig{
		ServerBuffer: key.buffer,
		Rate:         e.cfg.Rate,
		Delay:        key.delay,
		Policy:       e.cfg.Policy,
	})
	if err != nil {
		return nil, err
	}
	c := &Cohort{key: key}
	horizon := e.st.Horizon()
	dropped := 0
	for step := 0; ; step++ {
		var offers []netstream.Offered
		if step <= horizon {
			offers = e.offersAt(step)
		}
		stats, err := snd.Tick(offers)
		if err != nil {
			return nil, err
		}
		dropped += len(stats.Dropped)
		done := step+1 > horizon && snd.Backlog() == 0
		if done {
			// The End marker leaves in the same tick as the final flush,
			// exactly like session.stepOnce on the fallback path.
			if err := netstream.WriteEnd(rec); err != nil {
				return nil, err
			}
		}
		rec.endStep()
		c.drops = append(c.drops, int32(dropped))
		if done {
			break
		}
	}
	c.wire, c.off = rec.wire, rec.off
	return c, nil
}

// cohortCache memoizes cohorts per key. The double-checked entry/once
// layout keeps the map lock out of plan computation: concurrent Handles of
// the same key block on one build, Handles of other keys proceed.
type cohortCache struct {
	mu sync.Mutex
	m  map[cohortKey]*cohortEntry
}

type cohortEntry struct {
	once sync.Once
	c    *Cohort
	err  error
}

// cohortFor returns the shared cohort for the negotiated parameters,
// building it on first use. It returns nil when cohort serving is disabled
// or the cache is at capacity — callers then use the per-session Sender
// path, which produces byte-identical output.
func (e *Engine) cohortFor(delay, buffer int) *Cohort {
	if e.cfg.DisableCohorts {
		return nil
	}
	key := cohortKey{delay: delay, buffer: buffer}
	e.cohorts.mu.Lock()
	ent, ok := e.cohorts.m[key]
	if !ok {
		max := e.cfg.MaxCohorts
		if max <= 0 {
			max = defaultMaxCohorts
		}
		if len(e.cohorts.m) >= max {
			e.cohorts.mu.Unlock()
			return nil
		}
		ent = &cohortEntry{}
		e.cohorts.m[key] = ent
	}
	e.cohorts.mu.Unlock()
	ent.once.Do(func() { ent.c, ent.err = e.buildCohort(key) })
	if ent.err != nil {
		// A key whose plan cannot be built (the fallback Sender would fail
		// identically) is not retried; Handle surfaces the error through
		// the fallback path.
		return nil
	}
	return ent.c
}

// defaultMaxCohorts bounds distinct (delay, buffer) plans cached per
// engine. Each plan holds one encoded copy of the clip; sessions beyond
// the cap are served by the fallback path rather than growing memory
// without bound.
const defaultMaxCohorts = 128
