package serve

import (
	"errors"
	"os"

	"repro/internal/obs"
)

// engineMetrics bundles the engine's obs registry with the slot IDs its
// shards record through. Registration order fixes the /metrics output
// order, so new series belong at the end of newEngineMetrics.
type engineMetrics struct {
	reg *obs.Registry

	// Shard-recorded counters.
	cAdmitted       obs.CounterID
	cRetired        obs.CounterID
	cFailed         obs.CounterID
	cDeadlineExpiry obs.CounterID

	// Acceptor-recorded (global) counters.
	cRejected   obs.CounterID
	cCohortHits obs.CounterID
	cCohortMiss obs.CounterID

	// Gauges and distributions.
	gActive  obs.GaugeID
	hStepDur obs.HistID
}

// newEngineMetrics registers the serving engine's metric set (plus any
// daemon-provided extras) and freezes it for the given shard count.
func newEngineMetrics(e *Engine, shards int, extra func(*obs.Builder)) *engineMetrics {
	var b obs.Builder
	m := &engineMetrics{}
	m.cAdmitted = b.Counter("serve_sessions_admitted_total", "Sessions registered on a shard after handshake.")
	m.cRetired = b.Counter("serve_sessions_retired_total", "Sessions that drained cleanly to End.")
	m.cFailed = b.Counter("serve_sessions_failed_total", "Sessions that ended with an error (write failure, abort).")
	m.cDeadlineExpiry = b.Counter("serve_write_deadline_expiries_total", "Session failures whose write missed its armed deadline (slow client).")
	m.cRejected = b.Counter("serve_sessions_rejected_total", "Connections refused before registration (draining, session limit, bad handshake).")
	m.cCohortHits = b.Counter("serve_cohort_hits_total", "Handshakes whose (delay, buffer) hit a cached cohort plan.")
	m.cCohortMiss = b.Counter("serve_cohort_misses_total", "Handshakes served through the per-session fallback path.")
	m.gActive = b.Gauge("serve_sessions_active", "Sessions currently registered, summed across shards.")
	m.hStepDur = b.Histogram("serve_step_duration_us", "Wall-clock duration of one shard tick (all sessions stepped), microseconds.")
	b.Func("serve_draining", "1 while the engine refuses new sessions (Drain/Close in progress).", func() int64 {
		if e.closing.Load() {
			return 1
		}
		return 0
	})
	if extra != nil {
		extra(&b)
	}
	m.reg = obs.Build(&b, shards)
	return m
}

// noteSessionEnd records one session retirement into the shard's slots
// and flight ring: counters, the deadline-expiry classifier, and the
// retire/error lifecycle event. Runs on the shard goroutine, downstream
// of the noalloc step path — the tick stamp comes from the shard clock.
//
//smoothvet:noalloc
func (sh *shard) noteSessionEnd(id uint64, steps int, err error) {
	now := sh.clk.nanos.Load()
	m := sh.eng.met
	if err == nil {
		sh.met.Inc(m.cRetired)
		sh.rec.Record(now, obs.EvRetire, id, int64(steps))
		return
	}
	sh.met.Inc(m.cFailed)
	if errors.Is(err, os.ErrDeadlineExceeded) {
		sh.met.Inc(m.cDeadlineExpiry)
		sh.rec.Record(now, obs.EvDeadlineExpiry, id, int64(steps))
	}
	sh.rec.Record(now, obs.EvError, id, int64(steps))
}

// Obs returns the engine's metric registry for diag endpoints and tests.
func (e *Engine) Obs() *obs.Registry { return e.met.reg }

// StepDurationHist returns the shard-step-duration histogram's slot ID —
// the series a serving-side SLO accountant windows.
func (e *Engine) StepDurationHist() obs.HistID { return e.met.hStepDur }

// FlightRecorders returns the per-shard flight-recorder rings, indexed by
// shard.
func (e *Engine) FlightRecorders() []*obs.FlightRecorder { return e.recs }
