package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

func TestDescribeTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "clip.txt")

	cfg := trace.DefaultGenConfig()
	cfg.Frames = 130
	clip, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := clip.Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := describeTrace(path); err != nil {
		t.Errorf("describeTrace: %v", err)
	}
	if err := describeTrace(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("not a trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := describeTrace(bad); err == nil {
		t.Error("malformed trace accepted")
	}
}
