// Command tracegen generates and describes synthetic MPEG traces in the
// classic ASCII "index type size" format.
//
// Usage:
//
//	tracegen [-frames N] [-seed S] [-gop PATTERN] [-o FILE]       generate
//	tracegen -describe FILE                                        summarize
//
// The default calibration matches the statistics the paper reports for its
// CNN clips: mean frame ≈ 38 units, max 120 units, I/P/B ≈ 8/31/61 %.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	var (
		frames   = flag.Int("frames", 2000, "number of frames to generate")
		seed     = flag.Int64("seed", 1, "random seed")
		gop      = flag.String("gop", "", "GOP pattern override, e.g. IBBPBBPBBPBBP")
		profile  = flag.String("profile", "news", "content profile: news, sports or movie")
		out      = flag.String("o", "", "output file (default stdout)")
		describe = flag.String("describe", "", "summarize an existing trace file instead of generating")
	)
	flag.Parse()

	if *describe != "" {
		if err := describeTrace(*describe); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}

	var cfg trace.GenConfig
	switch *profile {
	case "news":
		cfg = trace.NewsProfile()
	case "sports":
		cfg = trace.SportsProfile()
	case "movie":
		cfg = trace.MovieProfile()
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown profile %q\n", *profile)
		os.Exit(1)
	}
	cfg.Frames = *frames
	cfg.Seed = *seed
	if *gop != "" {
		cfg.GOP = *gop
	}
	clip, err := trace.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := clip.Write(w); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func describeTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	clip, err := trace.Read(f)
	if err != nil {
		return err
	}
	fmt.Printf("frames:      %d\n", len(clip.Frames))
	fmt.Printf("total size:  %d units\n", clip.TotalSize())
	fmt.Printf("avg rate:    %.2f units/frame\n", clip.AverageRate())
	fmt.Printf("max frame:   %d units\n", clip.MaxFrameSize())
	stats := clip.TypeStats()
	for _, ft := range []trace.FrameType{trace.I, trace.P, trace.B} {
		s, ok := stats[ft]
		if !ok {
			continue
		}
		fmt.Printf("type %s:      %s (%.1f%% of frames)\n", ft, s, 100*float64(s.N)/float64(len(clip.Frames)))
	}
	return nil
}
