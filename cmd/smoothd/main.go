// Command smoothd serves a smoothed real-time stream over TCP using the
// netstream protocol: each connecting client gets the clip paced at the
// configured rate through a lossy smoothing buffer, with B = R·D negotiated
// per the paper's law from the client's advertised latency budget.
//
// Single-stream sessions run on the sharded serving engine
// (internal/serve): N shard loops, each with one clock stepping every
// session registered on it, instead of a goroutine and ticker per
// connection. Sessions that negotiate the same (delay, buffer) share one
// precomputed schedule from the engine's cohort cache and cost only a
// cursor each; -cohort-cache=false forces the per-session sender path.
// On SIGINT/SIGTERM the server stops accepting, drains
// in-flight sessions up to -drain, and exits 0.
//
// Usage:
//
//	smoothd [-listen :4321] [-trace FILE] [-frames N]
//	        [-rate-factor F] [-step 40ms] [-policy greedy] [-once]
//	        [-shards N] [-max-sessions N] [-drain 10s]
//	        [-cohort-cache=false] [-max-cohorts N]
//	        [-debug localhost:6060] [-slo 0]
//
// With -debug the server exposes the diagnostic surface on the given
// address: Prometheus-text /metrics, JSON /statusz, the flight-recorder
// dump at /debug/flightrec, and net/http/pprof under /debug/pprof/.
// SIGUSR1 dumps the unified diagnostic snapshot (runtime line, metrics,
// flight recorder) to stderr at any time, with or without -debug. A
// non-zero -slo arms the streaming SLO accountant on the windowed p99
// shard-step duration: crossing the target increments slo_breaches and
// dumps the flight recorder once per excursion.
//
// Pair it with cmd/smoothplay (interactive) or cmd/smoothload (load).
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"repro/internal/diag"
	"repro/internal/drop"
	"repro/internal/netstream"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/trace"
)

func main() {
	var (
		listen      = flag.String("listen", ":4321", "TCP listen address")
		tracePath   = flag.String("trace", "", "trace file (default: synthetic clip)")
		frames      = flag.Int("frames", 500, "synthetic clip length")
		seed        = flag.Int64("seed", 1, "synthetic clip seed")
		rateFactor  = flag.Float64("rate-factor", 1.1, "link rate relative to the average stream rate")
		step        = flag.Duration("step", 40*time.Millisecond, "wall-clock duration of one model step")
		policyName  = flag.String("policy", "greedy", "drop policy: taildrop, headdrop, greedy")
		once        = flag.Bool("once", false, "serve a single connection and exit")
		streams     = flag.Int("streams", 1, "substreams to multiplex over one shared smoothing buffer")
		shards      = flag.Int("shards", runtime.GOMAXPROCS(0), "serving-engine shard loops")
		maxSessions = flag.Int("max-sessions", 0, "concurrent session cap (0 = unlimited)")
		drainWait   = flag.Duration("drain", 10*time.Second, "in-flight session drain budget on shutdown")
		cohortCache = flag.Bool("cohort-cache", true, "serve same-parameter sessions from shared precomputed schedules")
		maxCohorts  = flag.Int("max-cohorts", 0, "distinct (delay, buffer) plans to precompute (0 = default cap)")
		debugAddr   = flag.String("debug", "", "serve /metrics, /statusz, /debug/flightrec and /debug/pprof on this address (empty = off)")
		sloTarget   = flag.Duration("slo", 0, "windowed p99 shard-step-duration target; breaches dump the flight recorder (0 = off)")
	)
	flag.Parse()

	if *streams < 1 {
		log.Fatalf("smoothd: -streams must be >= 1")
	}
	clips := make([]*trace.Clip, *streams)
	for i := range clips {
		c, err := loadClip(*tracePath, *frames, *seed+int64(i))
		if err != nil {
			log.Fatalf("smoothd: %v", err)
		}
		clips[i] = c
	}
	clip := clips[0]
	rate := int(*rateFactor * clip.AverageRate() * float64(*streams))
	if rate < 1 {
		rate = 1
	}
	var factory drop.Factory
	switch *policyName {
	case "taildrop":
		factory = drop.TailDrop
	case "headdrop":
		factory = drop.HeadDrop
	case "greedy":
		factory = drop.Greedy
	default:
		log.Fatalf("smoothd: unknown policy %q", *policyName)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("smoothd: %v", err)
	}
	log.Printf("smoothd: serving %d frames (avg rate %.1f units/frame) at R=%d units/step on %s (%d shards)",
		len(clip.Frames), clip.AverageRate(), rate, ln.Addr(), *shards)

	// sessionDone fires once per finished session; -once waits on it.
	sessionDone := make(chan struct{}, 1)
	noteDone := func() {
		select {
		case sessionDone <- struct{}{}:
		default:
		}
	}

	var eng *serve.Engine
	var muxWG sync.WaitGroup // legacy multiplexed sessions (streams > 1)
	if *streams == 1 {
		eng, err = serve.New(clip, trace.PaperWeights(), serve.Config{
			Rate:           rate,
			Shards:         *shards,
			MaxSessions:    *maxSessions,
			StepDuration:   *step,
			Policy:         factory,
			DisableCohorts: !*cohortCache,
			MaxCohorts:     *maxCohorts,
			Instrument:     diag.RegisterRuntimeMetrics,
			OnSessionDone: func(s serve.SessionStats, err error) {
				if err != nil {
					log.Printf("smoothd: session %s: %v", s.Remote, err)
				} else {
					log.Printf("smoothd: session %s done in %v (%d steps, %d dropped)",
						s.Remote, s.Elapsed.Round(time.Millisecond), s.Steps, s.Dropped)
				}
				noteDone()
			},
		})
		if err != nil {
			log.Fatalf("smoothd: %v", err)
		}
	}

	// Diagnostic surface: the engine's registry when sharded, a
	// runtime-only registry on the legacy mux path.
	dopts := diag.Options{Service: "smoothd"}
	if eng != nil {
		dopts.Registry = eng.Obs()
		dopts.Recorders = eng.FlightRecorders()
		if *sloTarget > 0 {
			slo := obs.NewSLO(eng.Obs(), eng.StepDurationHist(), sloTarget.Microseconds(), 0.99, func(p99 int64) {
				log.Printf("smoothd: SLO breach: windowed p99 step duration %dµs > %v", p99, *sloTarget)
				if err := obs.WriteFlightDump(os.Stderr, eng.FlightRecorders()); err != nil {
					log.Printf("smoothd: flight dump: %v", err)
				}
			})
			slo.Start(time.Second)
			defer slo.Stop()
			dopts.SLO = slo
		}
	} else {
		var b obs.Builder
		diag.RegisterRuntimeMetrics(&b)
		dopts.Registry = obs.Build(&b, 1)
	}
	if *debugAddr != "" {
		if _, err := diag.Start(*debugAddr, dopts); err != nil {
			log.Fatalf("smoothd: %v", err)
		}
	}
	diag.NotifySIGUSR1(dopts)

	// Accept in the background so the main goroutine can watch for signals.
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			conn, err := ln.Accept()
			if err != nil {
				if !errors.Is(err, net.ErrClosed) {
					log.Printf("smoothd: accept: %v", err)
				}
				return
			}
			if eng != nil {
				// The handshake read blocks; keep the accept loop free.
				go func(c net.Conn) {
					if err := eng.Handle(c); err != nil {
						log.Printf("smoothd: %v", err)
					}
				}(conn)
				continue
			}
			muxWG.Add(1)
			go func(c net.Conn) {
				defer muxWG.Done()
				defer c.Close()
				start := time.Now()
				if err := serveMuxSession(c, clips, rate, *step, factory); err != nil {
					log.Printf("smoothd: session %s: %v", c.RemoteAddr(), err)
				} else {
					log.Printf("smoothd: session %s done in %v", c.RemoteAddr(), time.Since(start).Round(time.Millisecond))
				}
				noteDone()
			}(conn)
		}
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	if *once {
		select {
		case <-sessionDone:
		case sig := <-sigCh:
			log.Printf("smoothd: %v", sig)
		}
	} else {
		sig := <-sigCh
		log.Printf("smoothd: %v: stopping accept, draining sessions (budget %v)", sig, *drainWait)
	}

	// Graceful shutdown: stop accepting, drain in-flight sessions up to the
	// budget, then exit 0 either way (Close aborts stragglers).
	ln.Close()
	<-acceptDone
	drained := true
	if eng != nil {
		drained = eng.Drain(*drainWait)
		eng.Close()
	} else {
		muxIdle := make(chan struct{})
		go func() { muxWG.Wait(); close(muxIdle) }()
		select {
		case <-muxIdle:
		case <-time.After(*drainWait):
			drained = false
		}
	}
	if drained {
		log.Printf("smoothd: drained cleanly, bye")
	} else {
		log.Printf("smoothd: drain budget exceeded, aborting in-flight sessions")
	}
	os.Exit(0)
}

// serveMuxSession performs the handshake and pushes all substreams through
// one shared smoothing buffer (B = R*D from the client's latency budget).
func serveMuxSession(c net.Conn, clips []*trace.Clip, rate int, step time.Duration, factory drop.Factory) error {
	msg, err := netstream.ReadMsg(c)
	if err != nil {
		return fmt.Errorf("reading hello: %w", err)
	}
	if msg.Hello == nil {
		return fmt.Errorf("expected hello")
	}
	delay := int(msg.Hello.DesiredDelay)
	if delay <= 0 || delay > 256 {
		delay = 32
	}
	buffer := rate * delay
	if err := netstream.WriteAccept(c, netstream.Accept{
		Rate:         uint32(rate),
		Delay:        uint32(delay),
		ServerBuffer: uint32(buffer),
		StepMicros:   uint32(step / time.Microsecond),
	}); err != nil {
		return err
	}
	dropped, err := netstream.ServeMux(c, clips, netstream.SenderConfig{
		ServerBuffer: buffer,
		Rate:         rate,
		Delay:        delay,
		Policy:       factory,
	}, step)
	if err != nil {
		return err
	}
	log.Printf("smoothd: mux session shed %d slices", dropped)
	return nil
}

func loadClip(path string, frames int, seed int64) (*trace.Clip, error) {
	if path == "" {
		cfg := trace.DefaultGenConfig()
		cfg.Frames = frames
		cfg.Seed = seed
		return trace.Generate(cfg)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := trace.Read(f)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return c, nil
}
