// Command smoothd serves a smoothed real-time stream over TCP using the
// netstream protocol: each connecting client gets the clip paced at the
// configured rate through a lossy smoothing buffer, with B = R·D negotiated
// per the paper's law from the client's advertised latency budget.
//
// Usage:
//
//	smoothd [-listen :4321] [-trace FILE] [-frames N]
//	        [-rate-factor F] [-step 40ms] [-policy greedy] [-once]
//
// Pair it with cmd/smoothplay.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"repro/internal/drop"
	"repro/internal/netstream"
	"repro/internal/trace"
)

func main() {
	var (
		listen     = flag.String("listen", ":4321", "TCP listen address")
		tracePath  = flag.String("trace", "", "trace file (default: synthetic clip)")
		frames     = flag.Int("frames", 500, "synthetic clip length")
		seed       = flag.Int64("seed", 1, "synthetic clip seed")
		rateFactor = flag.Float64("rate-factor", 1.1, "link rate relative to the average stream rate")
		step       = flag.Duration("step", 40*time.Millisecond, "wall-clock duration of one model step")
		policyName = flag.String("policy", "greedy", "drop policy: taildrop, headdrop, greedy")
		once       = flag.Bool("once", false, "serve a single connection and exit")
		streams    = flag.Int("streams", 1, "substreams to multiplex over one shared smoothing buffer")
	)
	flag.Parse()

	if *streams < 1 {
		log.Fatalf("smoothd: -streams must be >= 1")
	}
	clips := make([]*trace.Clip, *streams)
	for i := range clips {
		c, err := loadClip(*tracePath, *frames, *seed+int64(i))
		if err != nil {
			log.Fatalf("smoothd: %v", err)
		}
		clips[i] = c
	}
	clip := clips[0]
	rate := int(*rateFactor * clip.AverageRate() * float64(*streams))
	if rate < 1 {
		rate = 1
	}
	var factory drop.Factory
	switch *policyName {
	case "taildrop":
		factory = drop.TailDrop
	case "headdrop":
		factory = drop.HeadDrop
	case "greedy":
		factory = drop.Greedy
	default:
		log.Fatalf("smoothd: unknown policy %q", *policyName)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("smoothd: %v", err)
	}
	defer ln.Close()
	log.Printf("smoothd: serving %d frames (avg rate %.1f units/frame) at R=%d units/step on %s",
		len(clip.Frames), clip.AverageRate(), rate, ln.Addr())

	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatalf("smoothd: accept: %v", err)
		}
		serve := func(c net.Conn) {
			defer c.Close()
			start := time.Now()
			var err error
			if *streams > 1 {
				err = serveMuxSession(c, clips, rate, *step, factory)
			} else {
				err = netstream.Serve(c, clip, trace.PaperWeights(), netstream.ServeConfig{
					Rate:         rate,
					StepDuration: *step,
					Policy:       netstream.SenderConfig{Policy: factory},
				})
			}
			if err != nil {
				log.Printf("smoothd: session %s: %v", c.RemoteAddr(), err)
				return
			}
			log.Printf("smoothd: session %s done in %v", c.RemoteAddr(), time.Since(start).Round(time.Millisecond))
		}
		if *once {
			serve(conn)
			return
		}
		go serve(conn)
	}
}

// serveMuxSession performs the handshake and pushes all substreams through
// one shared smoothing buffer (B = R*D from the client's latency budget).
func serveMuxSession(c net.Conn, clips []*trace.Clip, rate int, step time.Duration, factory drop.Factory) error {
	msg, err := netstream.ReadMsg(c)
	if err != nil {
		return fmt.Errorf("reading hello: %w", err)
	}
	if msg.Hello == nil {
		return fmt.Errorf("expected hello")
	}
	delay := int(msg.Hello.DesiredDelay)
	if delay <= 0 || delay > 256 {
		delay = 32
	}
	buffer := rate * delay
	if err := netstream.WriteAccept(c, netstream.Accept{
		Rate:         uint32(rate),
		Delay:        uint32(delay),
		ServerBuffer: uint32(buffer),
		StepMicros:   uint32(step / time.Microsecond),
	}); err != nil {
		return err
	}
	dropped, err := netstream.ServeMux(c, clips, netstream.SenderConfig{
		ServerBuffer: buffer,
		Rate:         rate,
		Delay:        delay,
		Policy:       factory,
	}, step)
	if err != nil {
		return err
	}
	log.Printf("smoothd: mux session shed %d slices", dropped)
	return nil
}

func loadClip(path string, frames int, seed int64) (*trace.Clip, error) {
	if path == "" {
		cfg := trace.DefaultGenConfig()
		cfg.Frames = frames
		cfg.Seed = seed
		return trace.Generate(cfg)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := trace.Read(f)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return c, nil
}
