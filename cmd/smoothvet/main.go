// Smoothvet is the project's vet tool: a go vet -vettool multichecker
// enforcing the contracts that keep the hot paths fast and the experiments
// reproducible — aliasing of reused result buffers, schedule determinism,
// zero-allocation step paths, and error/deadline hygiene on the wire.
//
// Usage:
//
//	go build -o bin/smoothvet ./cmd/smoothvet
//	go vet -vettool=bin/smoothvet ./...
//
// Individual analyzers can be toggled the usual vet way, e.g.
// go vet -vettool=bin/smoothvet -hotpath=false ./... . See DESIGN.md
// ("Enforced invariants") for the contract each analyzer guards.
package main

import (
	"repro/internal/analysis"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/unitcheck"
)

// analyzers returns the suite in registration order; main_test locks the
// exact set so a refactor cannot silently drop a checker.
func analyzers() []*framework.Analyzer { return analysis.All() }

func main() { unitcheck.Main(analyzers()...) }
