package main

import "testing"

// TestRegisteredAnalyzers pins the exact analyzer suite: adding or removing
// an analyzer must update this list (and DESIGN.md) deliberately.
func TestRegisteredAnalyzers(t *testing.T) {
	want := []string{
		"aliasretain", "atomicpair", "clockuse", "determinism",
		"errloss", "hotpath", "pubimmut", "shardconfine",
	}
	got := analyzers()
	if len(got) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
}
