// Command experiments regenerates the paper's figures and the validation
// tables for its theorems (see DESIGN.md §5 for the index).
//
// Usage:
//
//	experiments                      run everything, print aligned tables
//	experiments -list                list experiment IDs
//	experiments -run fig3,onlinelb   run a subset
//	experiments -plot                add ASCII plots
//	experiments -csv DIR             also write one CSV per experiment
//	experiments -quick               reduced settings (benchmark scale)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		only     = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		plot     = flag.Bool("plot", false, "render ASCII plots")
		csvDir   = flag.String("csv", "", "directory to write per-experiment CSV files")
		mdDir    = flag.String("md", "", "directory to write per-experiment Markdown tables")
		quick    = flag.Bool("quick", false, "reduced settings")
		frames   = flag.Int("frames", 0, "override synthetic clip length")
		seed     = flag.Int64("seed", 0, "override trace seed")
		parallel = flag.Int("parallel", 1, "experiments to run concurrently (output order preserved)")
	)
	flag.Parse()

	registry := experiment.All()
	if *list {
		for _, name := range experiment.Names() {
			fmt.Println(name)
		}
		return nil
	}

	names := experiment.Names()
	if *only != "" {
		names = strings.Split(*only, ",")
		for _, n := range names {
			if _, ok := registry[n]; !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", n)
			}
		}
	}
	for _, dir := range []string{*csvDir, *mdDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
	}

	cfg := experiment.Config{Quick: *quick, Frames: *frames, Seed: *seed}

	// Run experiments with bounded concurrency; results print in the
	// requested order regardless of completion order.
	type outcome struct {
		tab *experiment.Table
		err error
	}
	results := make([]chan outcome, len(names))
	sem := make(chan struct{}, maxInt(*parallel, 1))
	for i, name := range names {
		results[i] = make(chan outcome, 1)
		go func(name string, ch chan outcome) {
			sem <- struct{}{}
			defer func() { <-sem }()
			tab, err := registry[name](cfg)
			ch <- outcome{tab, err}
		}(name, results[i])
	}
	for i, name := range names {
		res := <-results[i]
		if res.err != nil {
			return fmt.Errorf("%s: %w", name, res.err)
		}
		fmt.Println(res.tab.Text())
		if *plot {
			fmt.Println(res.tab.Plot(72, 18))
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, name+".csv")
			if err := os.WriteFile(path, []byte(res.tab.CSV()), 0o644); err != nil {
				return err
			}
			fmt.Printf("# wrote %s\n\n", path)
		}
		if *mdDir != "" {
			path := filepath.Join(*mdDir, name+".md")
			if err := os.WriteFile(path, []byte(res.tab.Markdown()), 0o644); err != nil {
				return err
			}
			fmt.Printf("# wrote %s\n\n", path)
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
