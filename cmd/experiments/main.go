// Command experiments regenerates the paper's figures and the validation
// tables for its theorems (see DESIGN.md §5 for the index).
//
// Usage:
//
//	experiments                      run everything, print aligned tables
//	experiments -list                list experiment IDs
//	experiments -run fig3,onlinelb   run a subset
//	experiments -plot                add ASCII plots
//	experiments -csv DIR             also write one CSV per experiment
//	experiments -quick               reduced settings (benchmark scale)
//	experiments -workers N           sweep points per experiment run on N
//	                                 goroutines (0 = GOMAXPROCS)
//	experiments -parallel N          N experiments run concurrently
//	experiments -timing              wall-time summary after the run
//	experiments -compare             re-run sequentially, report speedups
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		only     = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		plot     = flag.Bool("plot", false, "render ASCII plots")
		csvDir   = flag.String("csv", "", "directory to write per-experiment CSV files")
		mdDir    = flag.String("md", "", "directory to write per-experiment Markdown tables")
		quick    = flag.Bool("quick", false, "reduced settings")
		frames   = flag.Int("frames", 0, "override synthetic clip length")
		seed     = flag.Int64("seed", 0, "override trace seed")
		parallel = flag.Int("parallel", 1, "experiments to run concurrently (output order preserved)")
		workers  = flag.Int("workers", 0, "sweep-point goroutines per experiment (0 = GOMAXPROCS)")
		timing   = flag.Bool("timing", false, "print a wall-time summary after the run")
		compare  = flag.Bool("compare", false, "after the run, re-run each experiment with 1 worker and report the speedup (implies -timing)")
	)
	flag.Parse()

	registry := experiment.All()
	if *list {
		for _, name := range experiment.Names() {
			fmt.Println(name)
		}
		return nil
	}

	names := experiment.Names()
	if *only != "" {
		names = strings.Split(*only, ",")
		for _, n := range names {
			if _, ok := registry[n]; !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", n)
			}
		}
	}
	for _, dir := range []string{*csvDir, *mdDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
	}

	cfg := experiment.Config{Quick: *quick, Frames: *frames, Seed: *seed, Workers: *workers}

	// Run experiments with bounded concurrency; results print in the
	// requested order regardless of completion order.
	type outcome struct {
		tab  *experiment.Table
		err  error
		wall time.Duration
	}
	results := make([]chan outcome, len(names))
	sem := make(chan struct{}, maxInt(*parallel, 1))
	for i, name := range names {
		results[i] = make(chan outcome, 1)
		go func(name string, ch chan outcome) {
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			tab, err := registry[name](cfg)
			ch <- outcome{tab, err, time.Since(start)}
		}(name, results[i])
	}
	walls := make([]time.Duration, len(names))
	for i, name := range names {
		res := <-results[i]
		if res.err != nil {
			return fmt.Errorf("%s: %w", name, res.err)
		}
		walls[i] = res.wall
		fmt.Println(res.tab.Text())
		if *plot {
			fmt.Println(res.tab.Plot(72, 18))
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, name+".csv")
			if err := os.WriteFile(path, []byte(res.tab.CSV()), 0o644); err != nil {
				return err
			}
			fmt.Printf("# wrote %s\n\n", path)
		}
		if *mdDir != "" {
			path := filepath.Join(*mdDir, name+".md")
			if err := os.WriteFile(path, []byte(res.tab.Markdown()), 0o644); err != nil {
				return err
			}
			fmt.Printf("# wrote %s\n\n", path)
		}
	}

	if *timing || *compare {
		printTiming(names, walls, registry, cfg, *compare)
	}
	return nil
}

// printTiming renders the end-of-run timing summary: wall time per
// experiment (slowest first) and, with compare set, a sequential re-run
// (Workers=1) of each experiment with the resulting speedup.
func printTiming(names []string, walls []time.Duration, registry map[string]experiment.Runner, cfg experiment.Config, compare bool) {
	type row struct {
		name      string
		wall, seq time.Duration
	}
	rows := make([]row, len(names))
	var seqTotal time.Duration
	for i, name := range names {
		rows[i] = row{name: name, wall: walls[i]}
		if compare {
			seqCfg := cfg
			seqCfg.Workers = 1
			start := time.Now()
			if _, err := registry[name](seqCfg); err == nil {
				rows[i].seq = time.Since(start)
				seqTotal += rows[i].seq
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].wall > rows[j].wall })

	var total time.Duration
	for _, r := range rows {
		total += r.wall
	}
	fmt.Printf("# timing summary (workers=%d, GOMAXPROCS=%d)\n", cfg.Workers, runtime.GOMAXPROCS(0))
	if compare {
		fmt.Printf("# %-14s %12s %12s %9s\n", "experiment", "wall", "sequential", "speedup")
	} else {
		fmt.Printf("# %-14s %12s\n", "experiment", "wall")
	}
	for _, r := range rows {
		if compare && r.seq > 0 {
			fmt.Printf("# %-14s %12s %12s %8.2fx\n", r.name, r.wall.Round(time.Millisecond),
				r.seq.Round(time.Millisecond), float64(r.seq)/float64(r.wall))
		} else {
			fmt.Printf("# %-14s %12s\n", r.name, r.wall.Round(time.Millisecond))
		}
	}
	if compare && seqTotal > 0 {
		fmt.Printf("# %-14s %12s %12s %8.2fx\n", "TOTAL", total.Round(time.Millisecond),
			seqTotal.Round(time.Millisecond), float64(seqTotal)/float64(total))
	} else {
		fmt.Printf("# %-14s %12s\n", "TOTAL", total.Round(time.Millisecond))
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
