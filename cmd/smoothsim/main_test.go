package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"taildrop", "headdrop", "greedy", "random"} {
		f, err := policyByName(name, 1)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if f() == nil {
			t.Errorf("%s: nil policy", name)
		}
	}
	if _, err := policyByName("bogus", 1); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestLoadClipSynthetic(t *testing.T) {
	clip, err := loadClip("", 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(clip.Frames) != 100 {
		t.Errorf("got %d frames", len(clip.Frames))
	}
}

func TestLoadClipFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "clip.txt")
	if err := os.WriteFile(path, []byte("0 I 10\n1 B 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	clip, err := loadClip(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(clip.Frames) != 2 || clip.Frames[0].Size != 10 {
		t.Errorf("clip = %+v", clip.Frames)
	}
	if _, err := loadClip(filepath.Join(dir, "missing.txt"), 0, 0); err == nil {
		t.Error("missing file accepted")
	}
}
