// Command smoothsim runs one smoothing simulation over a trace and prints
// the schedule's metrics: throughput, benefit, weighted loss, per-site drop
// counts, and the three resource requirements of Definition 2.4.
//
// Usage:
//
//	smoothsim [-trace FILE] [-frames N] [-rate-factor F | -rate R]
//	          [-buffer-multiple M | -buffer B] [-policy NAME]
//	          [-slices byte|frame] [-delay D] [-optimal]
//
// Without -trace, a synthetic clip is generated (see cmd/tracegen).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/drop"
	"repro/internal/offline"
	"repro/internal/stream"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "smoothsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		tracePath  = flag.String("trace", "", "trace file (default: synthetic clip)")
		frames     = flag.Int("frames", 2000, "synthetic clip length")
		seed       = flag.Int64("seed", 1, "synthetic clip seed")
		rateFactor = flag.Float64("rate-factor", 1.1, "link rate relative to the average stream rate")
		rate       = flag.Int("rate", 0, "absolute link rate in units/step (overrides -rate-factor)")
		bufMult    = flag.Float64("buffer-multiple", 4, "buffer size in multiples of the max frame size")
		buffer     = flag.Int("buffer", 0, "absolute buffer size in units (overrides -buffer-multiple)")
		delay      = flag.Int("delay", 0, "smoothing delay D (default: ceil(B/R), the B=RD law)")
		policyName = flag.String("policy", "greedy", "drop policy: taildrop, headdrop, greedy, random")
		sliceMode  = flag.String("slices", "byte", "slice granularity: byte or frame")
		optimal    = flag.Bool("optimal", false, "also compute the exact offline optimum")
		timeline   = flag.Bool("timeline", false, "render an ASCII occupancy timeline")
		jsonOut    = flag.String("json", "", "write the full schedule as JSON to this file")
	)
	flag.Parse()

	clip, err := loadClip(*tracePath, *frames, *seed)
	if err != nil {
		return err
	}
	var st *stream.Stream
	switch *sliceMode {
	case "byte":
		st, err = trace.ByteSliceStream(clip, trace.PaperWeights())
	case "frame":
		st, err = trace.WholeFrameStream(clip, trace.PaperWeights())
	default:
		return fmt.Errorf("unknown slice mode %q", *sliceMode)
	}
	if err != nil {
		return err
	}

	R := *rate
	if R <= 0 {
		R = int(*rateFactor*clip.AverageRate() + 0.5)
		if R < 1 {
			R = 1
		}
	}
	B := *buffer
	if B <= 0 {
		B = int(*bufMult * float64(clip.MaxFrameSize()))
		if B < 1 {
			B = 1
		}
	}
	factory, err := policyByName(*policyName, *seed)
	if err != nil {
		return err
	}

	s, err := core.Simulate(st, core.Config{
		ServerBuffer: B,
		Rate:         R,
		Delay:        *delay,
		Policy:       factory,
	})
	if err != nil {
		return err
	}
	if err := s.Validate(); err != nil {
		return fmt.Errorf("internal error — schedule invalid: %w", err)
	}

	fmt.Printf("trace:         %d frames, avg rate %.1f, max frame %d units; slices=%s\n",
		len(clip.Frames), clip.AverageRate(), clip.MaxFrameSize(), *sliceMode)
	fmt.Print(s.Report())
	if *timeline {
		fmt.Print(s.Timeline(96, 12))
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := s.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("schedule JSON written to %s\n", *jsonOut)
	}

	if *optimal {
		var res *offline.Result
		if st.UnitSliced() {
			res, err = offline.OptimalUnit(st, B, R)
		} else {
			res, err = offline.OptimalFrames(st, B, R)
		}
		if err != nil {
			return err
		}
		fmt.Printf("optimal:      benefit %.6g (%.2f%% weighted loss); online/optimal = %.4f\n",
			res.Benefit, 100*(st.TotalWeight()-res.Benefit)/st.TotalWeight(),
			s.Benefit()/res.Benefit)
	}
	return nil
}

func loadClip(path string, frames int, seed int64) (*trace.Clip, error) {
	if path == "" {
		cfg := trace.DefaultGenConfig()
		cfg.Frames = frames
		cfg.Seed = seed
		return trace.Generate(cfg)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}

func policyByName(name string, seed int64) (drop.Factory, error) {
	switch name {
	case "taildrop":
		return drop.TailDrop, nil
	case "headdrop":
		return drop.HeadDrop, nil
	case "greedy":
		return drop.Greedy, nil
	case "random":
		return drop.Random(seed), nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}
