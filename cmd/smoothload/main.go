// Command smoothload is the serving benchmark: it drives K concurrent
// client sessions against a smoothd instance through the sharded reactor
// engine of internal/loadgen and reports aggregate throughput, step-lag
// percentiles and per-session loss. A session costs one fd and a few
// hundred bytes — no goroutine, no timer — so one smoothload process can
// hold ~20k concurrent sessions (the fd ceiling) and push hundreds of
// thousands through in waves.
//
// Step lag is measured per data message: a session anchors a clock at its
// first message (the paper's clock-synchronization-free playout anchor)
// and records how far behind the ideal pacing schedule — anchor +
// SendStep·step — each message arrives, rebased per session so the
// fastest of its leading messages defines lag 0. Timestamps are taken
// once per reactor wake on a monotonic clock, so the numbers measure the
// server, not smoothload's own scheduler. p50/p99/p99.9 come from
// fixed-footprint log-bucketed histograms accurate to ~3% relative
// error. Failures are broken down by stage: dial (connection refused),
// handshake (Hello/Accept exchange), and mid-stream (anything after
// Accept).
//
// In ramp mode (-ramp) smoothload runs waves of increasing size until
// the p99 step lag exceeds the SLO (-slo) or sessions start failing, and
// reports the largest wave the server sustained — the "max sessions at a
// p99 lag SLO" capacity number for the engine's density work. With
// multiple -connect addresses (including a smoothlb front tier, or the
// backends behind one), sessions stripe across them by session index
// (idx % len(addrs)); the stripe is a pure function of the index, so
// every ramp wave re-measures the same server mix and wave-to-wave lag
// deltas are attributable to load, not reassignment.
//
// Usage:
//
//	smoothload [-connect localhost:4321[,addr2,...]] [-sessions 256]
//	           [-delay 16] [-buffer BYTES] [-shards N] [-dialers N]
//	           [-debug localhost:6061] [-v]
//	smoothload -ramp [-ramp-start 64] [-ramp-grow 2.0] [-slo 50ms]
//	           [-sessions MAX]
//
// With -debug the generator exposes the same diagnostic surface as
// smoothd: Prometheus-text /metrics, JSON /statusz, /debug/flightrec and
// net/http/pprof, live mid-wave. The -slo target also arms a streaming
// accountant over the windowed p99 step lag (evaluated every second,
// scrape-visible as slo_* series); entering breach dumps the flight
// recorder to stderr once per excursion. SIGUSR1 dumps the unified
// diagnostic snapshot at any time, with or without -debug.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/diag"
	"repro/internal/loadgen"
	"repro/internal/obs"
)

func main() {
	var (
		addrs     = flag.String("connect", "localhost:4321", "server address(es), comma-separated; sessions stripe across them")
		sessions  = flag.Int("sessions", 256, "concurrent client sessions (the wave cap in ramp mode)")
		delay     = flag.Int("delay", 16, "desired smoothing delay in steps")
		buffer    = flag.Int("buffer", 0, "client buffer in bytes to advertise (0 = unlimited)")
		shards    = flag.Int("shards", 0, "reactor shards (0 = GOMAXPROCS)")
		dialers   = flag.Int("dialers", 0, "concurrent dial workers (0 = default)")
		debugAddr = flag.String("debug", "", "serve /metrics, /statusz, /debug/flightrec and /debug/pprof on this address (empty = off)")
		verbose   = flag.Bool("v", false, "log per-session completions")
		ramp      = flag.Bool("ramp", false, "ramp wave sizes until the p99 step-lag SLO breaks; report max sustainable sessions")
		rampStart = flag.Int("ramp-start", 64, "first wave size in ramp mode")
		rampGrow  = flag.Float64("ramp-grow", 2.0, "wave growth factor in ramp mode")
		slo       = flag.Duration("slo", 50*time.Millisecond, "p99 step-lag SLO for ramp mode")
	)
	flag.Parse()
	if *sessions < 1 {
		log.Fatal("smoothload: -sessions must be >= 1")
	}
	cfg := loadgen.Config{
		Addrs:      splitAddrs(*addrs),
		Shards:     *shards,
		Buffer:     *buffer,
		Delay:      *delay,
		Dialers:    *dialers,
		Instrument: diag.RegisterRuntimeMetrics,
	}
	if *verbose {
		cfg.OnSessionDone = func(st loadgen.SessionStats) {
			if st.Err != nil {
				log.Printf("smoothload: session %d (%s): %v", st.Index, st.Stage, st.Err)
			} else {
				log.Printf("smoothload: session %d done in %v", st.Index, st.Elapsed.Round(time.Millisecond))
			}
		}
	}
	eng, err := loadgen.New(cfg)
	if err != nil {
		log.Fatalf("smoothload: %v", err)
	}
	defer eng.Close()

	// Diagnostic surface + the streaming SLO accountant over windowed
	// p99 step lag — the live form of the ramp criterion.
	acct := obs.NewSLO(eng.Obs(), eng.StepLagHist(), slo.Microseconds(), 0.99, func(p99 int64) {
		log.Printf("smoothload: SLO breach: windowed p99 step lag %dµs > %v", p99, *slo)
		if err := obs.WriteFlightDump(os.Stderr, eng.FlightRecorders()); err != nil {
			log.Printf("smoothload: flight dump: %v", err)
		}
	})
	acct.Start(time.Second)
	defer acct.Stop()
	dopts := diag.Options{
		Service:   "smoothload",
		Registry:  eng.Obs(),
		Recorders: eng.FlightRecorders(),
		SLO:       acct,
	}
	if *debugAddr != "" {
		if _, err := diag.Start(*debugAddr, dopts); err != nil {
			log.Fatalf("smoothload: %v", err)
		}
	}
	diag.NotifySIGUSR1(dopts)

	if *ramp {
		runRamp(eng, *sessions, *rampStart, *rampGrow, *slo)
		return
	}
	rep, err := eng.Run(*sessions)
	if err != nil {
		log.Fatalf("smoothload: %v", err)
	}
	report(rep)
	if rep.Failed > 0 {
		os.Exit(1)
	}
}

func splitAddrs(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// runRamp drives waves of growing size until the SLO breaks, a session
// fails, or the wave cap is reached, then prints the last sustained
// level. The engine (shards, histograms, decoder scratch) is reused
// across waves.
func runRamp(eng *loadgen.Engine, cap, start int, grow float64, slo time.Duration) {
	if start < 1 {
		start = 1
	}
	if grow <= 1 {
		grow = 2
	}
	best := 0
	n := start
	for {
		if n > cap {
			n = cap
		}
		fmt.Printf("--- wave: %d sessions\n", n)
		rep, err := eng.Run(n)
		if err != nil {
			log.Fatalf("smoothload: %v", err)
		}
		report(rep)
		p99 := time.Duration(rep.Lag.Quantile(0.99)) * time.Microsecond
		if rep.Failed > 0 || p99 > slo {
			fmt.Printf("ramp:       %d sessions BROKE the SLO (p99 %v > %v, %d failed)\n",
				n, p99.Round(10*time.Microsecond), slo, rep.Failed)
			break
		}
		best = n
		if n == cap {
			break
		}
		n = int(float64(n) * grow)
	}
	if best == 0 {
		fmt.Printf("max sustainable sessions: none at p99 <= %v (start lower than %d?)\n", slo, start)
		os.Exit(1)
	}
	fmt.Printf("max sustainable sessions: %d at p99 step lag <= %v\n", best, slo)
}

func report(r loadgen.Report) {
	secs := r.Elapsed.Seconds()
	fmt.Printf("sessions:   %d completed, %d failed (%d dial, %d handshake, %d mid-stream) in %v (%.1f sessions/s)\n",
		r.Completed, r.Failed, r.DialFailed, r.HandshakeFailed, r.MidStreamFailed,
		r.Elapsed.Round(time.Millisecond), float64(r.Completed)/secs)
	fmt.Printf("throughput: %d payload bytes (%.1f KB/s aggregate)\n",
		r.Bytes, float64(r.Bytes)/1024/secs)
	if r.Lag.Count() > 0 {
		fmt.Printf("step lag:   p50 %s, p99 %s, p99.9 %s  (%d messages)\n",
			fmtMicros(r.Lag.Quantile(0.50)), fmtMicros(r.Lag.Quantile(0.99)),
			fmtMicros(r.Lag.Quantile(0.999)), r.Lag.Count())
	}
	if r.Completed > 0 {
		fmt.Printf("loss:       %d slices played, %d incomplete (mean %.2f/session, max %d), %d late bytes\n",
			r.Played, r.Incomplete, float64(r.Incomplete)/float64(r.Completed), r.MaxIncomplete, r.LateBytes)
	}
}

func fmtMicros(us int64) string {
	return (time.Duration(us) * time.Microsecond).Round(10 * time.Microsecond).String()
}
