// Command smoothload is the serving benchmark: it opens K concurrent client
// sessions against a smoothd instance, drives every stream to completion
// with the paper's timer-free client, and reports aggregate throughput,
// step-lag percentiles and per-session loss.
//
// Step lag is measured per data message: the client anchors a wall clock at
// the first message (the paper's clock-synchronization-free playout anchor)
// and records how far behind the ideal pacing schedule — anchor +
// SendStep·step — each message arrives, rebased per session so the fastest
// message defines lag 0. p50/p99/p99.9 of that distribution tell whether
// the server's shard clocks kept up with the offered load. Failures are
// broken down by stage: dial (connection refused), handshake (Hello/Accept
// exchange), and mid-stream (anything after Accept).
//
// In ramp mode (-ramp) smoothload runs waves of increasing size until the
// p99 step lag exceeds the SLO (-slo) or sessions start failing, and
// reports the largest wave the server sustained — the "max sessions at a
// p99 lag SLO" capacity number for the engine's density work.
//
// Usage:
//
//	smoothload [-connect localhost:4321] [-sessions 256] [-delay 16]
//	           [-buffer BYTES] [-v]
//	smoothload -ramp [-ramp-start 64] [-ramp-grow 2.0] [-slo 50ms]
//	           [-sessions MAX]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/netstream"
	"repro/internal/stats"
)

// Failure stages, in the order they can occur in a session's life.
const (
	stageDial      = "dial"
	stageHandshake = "handshake"
	stageMidStream = "mid-stream"
)

type result struct {
	stats   netstream.PlayStats
	lags    []float64 // per-message lag behind the pacing schedule, µs
	bytes   int64     // payload bytes received (including late/incomplete)
	elapsed time.Duration
	err     error
	stage   string // failure stage when err != nil
}

func main() {
	var (
		addr      = flag.String("connect", "localhost:4321", "server address")
		sessions  = flag.Int("sessions", 256, "concurrent client sessions (the wave cap in ramp mode)")
		delay     = flag.Int("delay", 16, "desired smoothing delay in steps")
		buffer    = flag.Int("buffer", 0, "client buffer in bytes to advertise (0 = unlimited)")
		verbose   = flag.Bool("v", false, "log per-session completions")
		ramp      = flag.Bool("ramp", false, "ramp wave sizes until the p99 step-lag SLO breaks; report max sustainable sessions")
		rampStart = flag.Int("ramp-start", 64, "first wave size in ramp mode")
		rampGrow  = flag.Float64("ramp-grow", 2.0, "wave growth factor in ramp mode")
		slo       = flag.Duration("slo", 50*time.Millisecond, "p99 step-lag SLO for ramp mode")
	)
	flag.Parse()
	if *sessions < 1 {
		log.Fatal("smoothload: -sessions must be >= 1")
	}
	if *ramp {
		runRamp(*addr, *buffer, *delay, *sessions, *rampStart, *rampGrow, *slo, *verbose)
		return
	}
	results, wall := runWave(*addr, *sessions, *buffer, *delay, *verbose)
	sum := report(results, wall)
	if sum.failed > 0 {
		os.Exit(1)
	}
}

// runRamp drives waves of growing size until the SLO breaks, a session
// fails, or the wave cap is reached, then prints the last sustained level.
func runRamp(addr string, buffer, delay, cap, start int, grow float64, slo time.Duration, verbose bool) {
	if start < 1 {
		start = 1
	}
	if grow <= 1 {
		grow = 2
	}
	best := 0
	n := start
	for {
		if n > cap {
			n = cap
		}
		fmt.Printf("--- wave: %d sessions\n", n)
		results, wall := runWave(addr, n, buffer, delay, verbose)
		sum := report(results, wall)
		p99 := time.Duration(sum.p99 * float64(time.Microsecond))
		if sum.failed > 0 || p99 > slo {
			fmt.Printf("ramp:       %d sessions BROKE the SLO (p99 %v > %v, %d failed)\n",
				n, p99.Round(10*time.Microsecond), slo, sum.failed)
			break
		}
		best = n
		if n == cap {
			break
		}
		n = int(float64(n) * grow)
	}
	if best == 0 {
		fmt.Printf("max sustainable sessions: none at p99 <= %v (start lower than %d?)\n", slo, start)
		os.Exit(1)
	}
	fmt.Printf("max sustainable sessions: %d at p99 step lag <= %v\n", best, slo)
}

// runWave opens n concurrent sessions and waits for all of them.
func runWave(addr string, n, buffer, delay int, verbose bool) ([]result, time.Duration) {
	results := make([]result, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = runSession(addr, buffer, delay)
			if verbose {
				if err := results[i].err; err != nil {
					log.Printf("smoothload: session %d (%s): %v", i, results[i].stage, err)
				} else {
					log.Printf("smoothload: session %d done in %v", i, results[i].elapsed.Round(time.Millisecond))
				}
			}
		}(i)
	}
	wg.Wait()
	return results, time.Since(start)
}

// runSession performs one full handshake-receive-play session, measuring
// the lag of every data message against the pacing schedule.
func runSession(addr string, buffer, delay int) result {
	var res result
	fail := func(stage string, err error) result {
		res.stage, res.err = stage, err
		return res
	}
	begin := time.Now()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fail(stageDial, err)
	}
	defer conn.Close()

	if err := netstream.WriteHello(conn, netstream.Hello{
		ClientBuffer: uint32(buffer),
		DesiredDelay: uint32(delay),
	}); err != nil {
		return fail(stageHandshake, err)
	}
	dec := netstream.NewDecoder(conn)
	msg, err := dec.Next()
	if err != nil {
		return fail(stageHandshake, fmt.Errorf("reading accept: %w", err))
	}
	if msg.Accept == nil {
		return fail(stageHandshake, fmt.Errorf("expected accept, got %+v", msg))
	}
	acc := *msg.Accept
	stepDur := time.Duration(acc.StepMicros) * time.Microsecond
	rcv, err := netstream.NewReceiver(int(acc.Delay))
	if err != nil {
		return fail(stageHandshake, err)
	}
	res.stats.Delay = int(acc.Delay)

	playUpTo := -1
	flush := func(step int) {
		for playUpTo < step {
			playUpTo++
			ev := rcv.Play(playUpTo)
			for _, sl := range ev.Slices {
				res.stats.Played++
				res.stats.PlayedBytes += sl.Size
			}
			res.stats.Incomplete += ev.Incomplete
		}
	}

	var anchor time.Time
	anchored := false
	maxFrame := -1
	for {
		msg, err := dec.Next()
		if err != nil {
			return fail(stageMidStream, err)
		}
		if msg.End {
			break
		}
		if msg.Data == nil {
			return fail(stageMidStream, fmt.Errorf("unexpected message %+v", msg))
		}
		d := msg.Data
		now := time.Now()
		ideal := time.Duration(d.SendStep) * stepDur
		if !anchored {
			anchor = now.Add(-ideal)
			anchored = true
		}
		res.lags = append(res.lags, float64(now.Sub(anchor.Add(ideal))/time.Microsecond))
		res.bytes += int64(len(d.Payload))
		if int(d.Arrival) > maxFrame {
			maxFrame = int(d.Arrival)
		}
		flush(int(d.SendStep) - 1)
		if err := rcv.Ingest(d); err != nil {
			return fail(stageMidStream, err)
		}
	}
	flush(maxFrame + int(acc.Delay))
	res.stats.LateBytes = rcv.LateBytes()
	res.stats.MaxBuffer = rcv.MaxOccupancy()
	res.elapsed = time.Since(begin)

	// Rebase the lags on the session's fastest message: the anchor message
	// itself may have been delayed (e.g. by the connection burst), which
	// would make everything after it look early. After rebasing, lag is
	// non-negative jitter behind the best-case pacing schedule.
	min := 0.0
	for _, l := range res.lags {
		if l < min {
			min = l
		}
	}
	for i := range res.lags {
		res.lags[i] -= min
	}
	return res
}

// summary carries the aggregates a ramp wave decides on.
type summary struct {
	failed int
	p99    float64 // µs; 0 when no messages were measured
}

func report(results []result, wall time.Duration) summary {
	completed, failed := 0, 0
	byStage := map[string]int{}
	var bytes int64
	var lags []float64
	incomplete, late := 0, 0
	maxIncomplete, played := 0, 0
	for _, r := range results {
		if r.err != nil {
			failed++
			byStage[r.stage]++
			continue
		}
		completed++
		bytes += r.bytes
		lags = append(lags, r.lags...)
		played += r.stats.Played
		incomplete += r.stats.Incomplete
		late += r.stats.LateBytes
		if r.stats.Incomplete > maxIncomplete {
			maxIncomplete = r.stats.Incomplete
		}
	}
	secs := wall.Seconds()
	fmt.Printf("sessions:   %d completed, %d failed (%d dial, %d handshake, %d mid-stream) in %v (%.1f sessions/s)\n",
		completed, failed, byStage[stageDial], byStage[stageHandshake], byStage[stageMidStream],
		wall.Round(time.Millisecond), float64(completed)/secs)
	fmt.Printf("throughput: %d payload bytes (%.1f KB/s aggregate)\n",
		bytes, float64(bytes)/1024/secs)
	sum := summary{failed: failed}
	if len(lags) > 0 {
		q := stats.Quantiles(lags, 0.50, 0.99, 0.999)
		sum.p99 = q[1]
		fmt.Printf("step lag:   p50 %s, p99 %s, p99.9 %s  (%d messages)\n",
			fmtMicros(q[0]), fmtMicros(q[1]), fmtMicros(q[2]), len(lags))
	}
	if completed > 0 {
		fmt.Printf("loss:       %d slices played, %d incomplete (mean %.2f/session, max %d), %d late bytes\n",
			played, incomplete, float64(incomplete)/float64(completed), maxIncomplete, late)
	}
	return sum
}

func fmtMicros(us float64) string {
	return time.Duration(us * float64(time.Microsecond)).Round(10 * time.Microsecond).String()
}
