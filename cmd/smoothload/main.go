// Command smoothload is the serving benchmark: it opens K concurrent client
// sessions against a smoothd instance, drives every stream to completion
// with the paper's timer-free client, and reports aggregate throughput,
// step-lag percentiles and per-session loss.
//
// Step lag is measured per data message: the client anchors a wall clock at
// the first message (the paper's clock-synchronization-free playout anchor)
// and records how far behind the ideal pacing schedule — anchor +
// SendStep·step — each message arrives, rebased per session so the fastest
// message defines lag 0. p50/p99 of that distribution tell whether the
// server's shard clocks kept up with the offered load.
//
// Usage:
//
//	smoothload [-connect localhost:4321] [-sessions 256] [-delay 16]
//	           [-buffer BYTES] [-v]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/netstream"
	"repro/internal/stats"
)

type result struct {
	stats   netstream.PlayStats
	lags    []float64 // per-message lag behind the pacing schedule, µs
	bytes   int64     // payload bytes received (including late/incomplete)
	elapsed time.Duration
	err     error
}

func main() {
	var (
		addr     = flag.String("connect", "localhost:4321", "server address")
		sessions = flag.Int("sessions", 256, "concurrent client sessions")
		delay    = flag.Int("delay", 16, "desired smoothing delay in steps")
		buffer   = flag.Int("buffer", 0, "client buffer in bytes to advertise (0 = unlimited)")
		verbose  = flag.Bool("v", false, "log per-session completions")
	)
	flag.Parse()
	if *sessions < 1 {
		log.Fatal("smoothload: -sessions must be >= 1")
	}

	results := make([]result, *sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = runSession(*addr, *buffer, *delay)
			if *verbose {
				if err := results[i].err; err != nil {
					log.Printf("smoothload: session %d: %v", i, err)
				} else {
					log.Printf("smoothload: session %d done in %v", i, results[i].elapsed.Round(time.Millisecond))
				}
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	report(results, wall)
}

// runSession performs one full handshake-receive-play session, measuring
// the lag of every data message against the pacing schedule.
func runSession(addr string, buffer, delay int) result {
	var res result
	begin := time.Now()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		res.err = err
		return res
	}
	defer conn.Close()

	if err := netstream.WriteHello(conn, netstream.Hello{
		ClientBuffer: uint32(buffer),
		DesiredDelay: uint32(delay),
	}); err != nil {
		res.err = err
		return res
	}
	dec := netstream.NewDecoder(conn)
	msg, err := dec.Next()
	if err != nil {
		res.err = fmt.Errorf("reading accept: %w", err)
		return res
	}
	if msg.Accept == nil {
		res.err = fmt.Errorf("expected accept, got %+v", msg)
		return res
	}
	acc := *msg.Accept
	stepDur := time.Duration(acc.StepMicros) * time.Microsecond
	rcv, err := netstream.NewReceiver(int(acc.Delay))
	if err != nil {
		res.err = err
		return res
	}
	res.stats.Delay = int(acc.Delay)

	playUpTo := -1
	flush := func(step int) {
		for playUpTo < step {
			playUpTo++
			ev := rcv.Play(playUpTo)
			for _, sl := range ev.Slices {
				res.stats.Played++
				res.stats.PlayedBytes += sl.Size
			}
			res.stats.Incomplete += ev.Incomplete
		}
	}

	var anchor time.Time
	anchored := false
	maxFrame := -1
	for {
		msg, err := dec.Next()
		if err != nil {
			res.err = fmt.Errorf("mid-stream: %w", err)
			return res
		}
		if msg.End {
			break
		}
		if msg.Data == nil {
			res.err = fmt.Errorf("unexpected message %+v", msg)
			return res
		}
		d := msg.Data
		now := time.Now()
		ideal := time.Duration(d.SendStep) * stepDur
		if !anchored {
			anchor = now.Add(-ideal)
			anchored = true
		}
		res.lags = append(res.lags, float64(now.Sub(anchor.Add(ideal))/time.Microsecond))
		res.bytes += int64(len(d.Payload))
		if int(d.Arrival) > maxFrame {
			maxFrame = int(d.Arrival)
		}
		flush(int(d.SendStep) - 1)
		if err := rcv.Ingest(d); err != nil {
			res.err = err
			return res
		}
	}
	flush(maxFrame + int(acc.Delay))
	res.stats.LateBytes = rcv.LateBytes()
	res.stats.MaxBuffer = rcv.MaxOccupancy()
	res.elapsed = time.Since(begin)

	// Rebase the lags on the session's fastest message: the anchor message
	// itself may have been delayed (e.g. by the connection burst), which
	// would make everything after it look early. After rebasing, lag is
	// non-negative jitter behind the best-case pacing schedule.
	min := 0.0
	for _, l := range res.lags {
		if l < min {
			min = l
		}
	}
	for i := range res.lags {
		res.lags[i] -= min
	}
	return res
}

func report(results []result, wall time.Duration) {
	completed, failed := 0, 0
	var bytes int64
	var lags []float64
	incomplete, late := 0, 0
	maxIncomplete, played := 0, 0
	for _, r := range results {
		if r.err != nil {
			failed++
			continue
		}
		completed++
		bytes += r.bytes
		lags = append(lags, r.lags...)
		played += r.stats.Played
		incomplete += r.stats.Incomplete
		late += r.stats.LateBytes
		if r.stats.Incomplete > maxIncomplete {
			maxIncomplete = r.stats.Incomplete
		}
	}
	secs := wall.Seconds()
	fmt.Printf("sessions:   %d completed, %d failed in %v (%.1f sessions/s)\n",
		completed, failed, wall.Round(time.Millisecond), float64(completed)/secs)
	fmt.Printf("throughput: %d payload bytes (%.1f KB/s aggregate)\n",
		bytes, float64(bytes)/1024/secs)
	if len(lags) > 0 {
		q := stats.Quantiles(lags, 0.50, 0.99)
		fmt.Printf("step lag:   p50 %s, p99 %s  (%d messages)\n",
			fmtMicros(q[0]), fmtMicros(q[1]), len(lags))
	}
	if completed > 0 {
		fmt.Printf("loss:       %d slices played, %d incomplete (mean %.2f/session, max %d), %d late bytes\n",
			played, incomplete, float64(incomplete)/float64(completed), maxIncomplete, late)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func fmtMicros(us float64) string {
	return time.Duration(us * float64(time.Microsecond)).Round(10 * time.Microsecond).String()
}
