// Command benchjson converts `go test -bench` text output into JSON so
// benchmark baselines can be committed and diffed (see BENCH_quick.json).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson > BENCH_quick.json
//	benchjson -in bench.txt -out BENCH_quick.json
//
// The converter understands the standard benchmark line format
//
//	BenchmarkName-8   125   9561906 ns/op   4096 B/op   12 allocs/op
//
// plus the goos/goarch/pkg/cpu header lines, and ignores everything else
// (PASS, ok, test log output).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Pkg is the package the benchmark came from, when the input covered
	// more than one (e.g. `go test -bench . ./...`); empty otherwise.
	Pkg string `json:"pkg,omitempty"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported ns/op.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp come from -benchmem; null when absent.
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
}

// File is the committed JSON document. Pkg is the single package the
// benchmarks came from; when the input spans several packages it is empty
// and each Result carries its own Pkg instead.
type File struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	inPath := flag.String("in", "", "input file (default stdin)")
	outPath := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	doc, err := Parse(in)
	if err != nil {
		return err
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *outPath != "" {
		return os.WriteFile(*outPath, buf, 0o644)
	}
	_, err = os.Stdout.Write(buf)
	return err
}

// Parse reads `go test -bench` output and collects header metadata and
// benchmark lines.
func Parse(r io.Reader) (*File, error) {
	doc := &File{}
	pkg, multiPkg := "", false
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			if doc.Pkg == "" && !multiPkg {
				doc.Pkg = pkg
			} else if doc.Pkg != pkg {
				multiPkg = true
				doc.Pkg = ""
			}
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseLine(line)
			if !ok {
				continue
			}
			res.Pkg = pkg
			doc.Benchmarks = append(doc.Benchmarks, res)
		}
	}
	if !multiPkg {
		// Single-package input: keep the package at the file level only,
		// preserving the original compact format.
		for i := range doc.Benchmarks {
			doc.Benchmarks[i].Pkg = ""
		}
	}
	return doc, sc.Err()
}

// parseLine parses one benchmark result line; ok is false for lines that
// merely start with "Benchmark" but are not results.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Result{}, false
	}
	res := Result{Name: fields[0], Procs: 1}
	if i := strings.LastIndex(res.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Name, res.Procs = res.Name[:i], p
		}
	}
	iter, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res.Iterations = iter
	ns, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return Result{}, false
	}
	res.NsPerOp = ns
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			res.BytesPerOp = &v
		case "allocs/op":
			res.AllocsPerOp = &v
		}
	}
	return res, true
}
