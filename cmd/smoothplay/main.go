// Command smoothplay connects to a smoothd server, receives the smoothed
// stream, reconstructs it with the paper's timer-based client, and reports
// playout statistics.
//
// Usage:
//
//	smoothplay [-connect host:4321] [-delay D] [-buffer BYTES] [-v]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"

	"repro/internal/netstream"
)

func main() {
	var (
		addr    = flag.String("connect", "localhost:4321", "server address")
		delay   = flag.Int("delay", 16, "desired smoothing delay in steps")
		buffer  = flag.Int("buffer", 0, "client buffer in bytes to advertise (0 = unlimited)")
		verbose = flag.Bool("v", false, "log every playout step")
		streams = flag.Int("streams", 1, "substreams to expect (matching smoothd -streams)")
	)
	flag.Parse()

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		log.Fatalf("smoothplay: %v", err)
	}
	defer conn.Close()

	if *streams > 1 {
		if err := receiveMux(conn, *buffer, *delay, *streams); err != nil {
			log.Fatalf("smoothplay: %v", err)
		}
		return
	}

	var onPlay func(netstream.PlayEvent)
	if *verbose {
		onPlay = func(ev netstream.PlayEvent) {
			log.Printf("step %d: played %d slices, %d incomplete", ev.Step, len(ev.Slices), ev.Incomplete)
		}
	}
	stats, err := netstream.Receive(conn, *buffer, *delay, onPlay)
	if err != nil {
		log.Fatalf("smoothplay: %v", err)
	}
	fmt.Printf("negotiated delay: %d steps\n", stats.Delay)
	fmt.Printf("played:           %d slices (%d bytes)\n", stats.Played, stats.PlayedBytes)
	fmt.Printf("incomplete:       %d slices\n", stats.Incomplete)
	fmt.Printf("late bytes:       %d\n", stats.LateBytes)
	fmt.Printf("peak buffer:      %d bytes\n", stats.MaxBuffer)
	if stats.Corrupt > 0 {
		log.Fatalf("smoothplay: %d slices failed payload verification", stats.Corrupt)
	}
}

// receiveMux performs the handshake and demultiplexes a shared session.
func receiveMux(conn net.Conn, buffer, delay, streams int) error {
	if err := netstream.WriteHello(conn, netstream.Hello{
		ClientBuffer: uint32(buffer),
		DesiredDelay: uint32(delay),
	}); err != nil {
		return err
	}
	msg, err := netstream.ReadMsg(conn)
	if err != nil {
		return err
	}
	if msg.Accept == nil {
		return fmt.Errorf("expected accept, got %+v", msg)
	}
	stats, err := netstream.ReceiveMux(conn, int(msg.Accept.Delay), streams)
	if err != nil {
		return err
	}
	fmt.Printf("negotiated delay: %d steps; %d substreams\n", msg.Accept.Delay, streams)
	for i, ps := range stats.PerStream {
		fmt.Printf("  stream %d: %d slices, %d bytes, weight %.0f\n", i, ps.Played, ps.Bytes, ps.Weight)
	}
	fmt.Printf("incomplete: %d slices\n", stats.Incomplete)
	return nil
}
