package main

import (
	"strings"
	"testing"
)

func i64(v int64) *int64 { return &v }

func baseFile() *File {
	return &File{
		Pkg: "repro",
		Benchmarks: []Result{
			{Name: "BenchmarkServerStep", Procs: 1, NsPerOp: 4000, BytesPerOp: i64(0), AllocsPerOp: i64(0)},
			{Name: "BenchmarkSimulate/TailDrop", Procs: 1, NsPerOp: 2e6, BytesPerOp: i64(0), AllocsPerOp: i64(0)},
			{Name: "BenchmarkFig2", Procs: 1, NsPerOp: 5e7, BytesPerOp: i64(5_000_000), AllocsPerOp: i64(300)},
		},
	}
}

var laxLimits = Limits{
	Ns:     Limit{Ratio: 1.0, Slack: 100000},
	Bytes:  Limit{Ratio: 0.5, Slack: 4096},
	Allocs: Limit{Ratio: 0.5, Slack: 8},
}

// TestCompareClean: an identical run passes with zero regressions.
func TestCompareClean(t *testing.T) {
	regs, missing, compared := Compare(baseFile(), baseFile(), laxLimits, nil)
	if len(regs) != 0 || len(missing) != 0 || compared != 3 {
		t.Fatalf("regs=%v missing=%v compared=%d", regs, missing, compared)
	}
}

// TestCompareInjectedRegression: the gate's reason to exist. A run where the
// allocation-free paths start allocating and a figure sweep doubles its
// footprint must trip — this is the scenario the acceptance criteria demand
// a non-zero exit for (run() exits 1 whenever Compare returns regressions).
func TestCompareInjectedRegression(t *testing.T) {
	cur := baseFile()
	cur.Benchmarks[0].AllocsPerOp = i64(50)        // 0 -> 50 allocs: way past slack 8
	cur.Benchmarks[2].BytesPerOp = i64(12_000_000) // 5MB -> 12MB: past 1.5x+4096
	cur.Benchmarks[2].NsPerOp = 5e8                // 10x slower: past 2x+slack

	regs, _, _ := Compare(baseFile(), cur, laxLimits, nil)
	if len(regs) != 3 {
		t.Fatalf("want 3 regressions, got %d: %v", len(regs), regs)
	}
	var metrics []string
	for _, r := range regs {
		metrics = append(metrics, r.Name+":"+r.Metric)
	}
	joined := strings.Join(metrics, " ")
	for _, want := range []string{
		"BenchmarkServerStep:allocs/op",
		"BenchmarkFig2:B/op",
		"BenchmarkFig2:ns/op",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing expected regression %s in %s", want, joined)
		}
	}
}

// TestCompareSlackOnZeroBaseline: slack is what keeps a 0-alloc baseline
// from tripping on measurement fuzz, while still catching real growth.
func TestCompareSlackOnZeroBaseline(t *testing.T) {
	cur := baseFile()
	cur.Benchmarks[1].AllocsPerOp = i64(8) // exactly the slack: allowed
	regs, _, _ := Compare(baseFile(), cur, laxLimits, nil)
	if len(regs) != 0 {
		t.Fatalf("8 allocs within slack should pass, got %v", regs)
	}
	cur.Benchmarks[1].AllocsPerOp = i64(9) // one past the slack: caught
	regs, _, _ = Compare(baseFile(), cur, laxLimits, nil)
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("9 allocs past slack should trip once, got %v", regs)
	}
}

// TestCompareRuleOverride: per-benchmark rules tighten (or disable) metrics
// for matching names; later rules win.
func TestCompareRuleOverride(t *testing.T) {
	cur := baseFile()
	cur.Benchmarks[1].AllocsPerOp = i64(3)

	strictSim, err := parseRule("BenchmarkSimulate/*:allocs=0.0+0", laxLimits)
	if err != nil {
		t.Fatal(err)
	}
	regs, _, _ := Compare(baseFile(), cur, laxLimits, []Rule{strictSim})
	if len(regs) != 1 || regs[0].Name != "BenchmarkSimulate/TailDrop" {
		t.Fatalf("strict rule should catch 3 allocs on a 0-alloc baseline, got %v", regs)
	}

	disable, err := parseRule("BenchmarkSimulate/*:allocs=-1", laxLimits)
	if err != nil {
		t.Fatal(err)
	}
	regs, _, _ = Compare(baseFile(), cur, laxLimits, []Rule{strictSim, disable})
	if len(regs) != 0 {
		t.Fatalf("later disabling rule should win, got %v", regs)
	}
}

// TestCompareMissing: a baseline benchmark absent from the current run is
// reported (strictness is the caller's choice).
func TestCompareMissing(t *testing.T) {
	cur := baseFile()
	cur.Benchmarks = cur.Benchmarks[:2]
	regs, missing, compared := Compare(baseFile(), cur, laxLimits, nil)
	if len(regs) != 0 || compared != 2 {
		t.Fatalf("regs=%v compared=%d", regs, compared)
	}
	if len(missing) != 1 || !strings.Contains(missing[0], "BenchmarkFig2") {
		t.Fatalf("missing=%v", missing)
	}
}

// TestParseRuleErrors: malformed specs are rejected with a diagnostic.
func TestParseRuleErrors(t *testing.T) {
	for _, spec := range []string{
		"no-colon",
		"glob:",
		"glob:latency=0.5",
		"glob:ns=abc",
		"glob:ns=0.5+xyz",
		"[:ns=0.5",
	} {
		if _, err := parseRule(spec, laxLimits); err == nil {
			t.Errorf("parseRule(%q) should fail", spec)
		}
	}
}

// TestParseRuleSlackDefault: a rule without an explicit slack inherits the
// global slack for that metric.
func TestParseRuleSlackDefault(t *testing.T) {
	r, err := parseRule("Benchmark*:allocs=0.25", laxLimits)
	if err != nil {
		t.Fatal(err)
	}
	if r.Allocs == nil || r.Allocs.Ratio != 0.25 || r.Allocs.Slack != laxLimits.Allocs.Slack {
		t.Fatalf("rule = %+v", r.Allocs)
	}
}
