// Command benchdiff compares a fresh benchmark run (benchjson format)
// against a committed baseline and exits non-zero when any benchmark
// regressed beyond its threshold. It is the regression gate behind
// scripts/verify.sh and CI: the allocation discipline of the simulation
// core (see DESIGN.md "Memory layout & amortization") is enforced by
// machine, not by review.
//
// Usage:
//
//	benchdiff -baseline BENCH_quick.json -current bench_new.json
//	benchdiff -baseline BENCH_quick.json -current bench_new.json \
//	    -ns 1.0 -allocs 0.25 -rule 'BenchmarkSimulate/*:allocs=0.0+0'
//
// A benchmark regresses on a metric when
//
//	current > baseline*(1+ratio) + slack
//
// with per-metric global ratios/slacks (-ns, -bytes, -allocs, *-slack) that
// can be overridden per benchmark with repeatable -rule flags:
//
//	-rule 'GLOB:METRIC=RATIO[+SLACK][,METRIC=RATIO[+SLACK]...]'
//
// GLOB is a path.Match pattern over the benchmark name (no -N procs
// suffix); METRIC is ns, bytes or allocs; RATIO is the allowed fractional
// growth (negative disables the metric for matching benchmarks); SLACK is
// an absolute allowance on top, defaulting to the global slack. Later rules
// win. Timing ratios should stay generous (CI machines are noisy); bytes
// and allocs are deterministic and can be tight.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// Result mirrors cmd/benchjson's per-benchmark record.
type Result struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg,omitempty"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// File mirrors cmd/benchjson's document format.
type File struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// Limit is one metric's allowance: current may grow to
// baseline*(1+Ratio)+Slack before the gate trips. A negative Ratio disables
// the check.
type Limit struct {
	Ratio float64
	Slack float64
}

func (l Limit) allows(base, cur float64) bool {
	if l.Ratio < 0 {
		return true
	}
	return cur <= base*(1+l.Ratio)+l.Slack
}

// Limits bundles the three per-metric allowances.
type Limits struct {
	Ns     Limit
	Bytes  Limit
	Allocs Limit
}

// Rule is a per-benchmark override selected by a path.Match glob on the
// benchmark name.
type Rule struct {
	Glob   string
	Ns     *Limit
	Bytes  *Limit
	Allocs *Limit
}

// limitsFor resolves the effective limits for one benchmark: globals,
// overlaid by every matching rule in order (later rules win).
func limitsFor(name string, global Limits, rules []Rule) Limits {
	eff := global
	for _, r := range rules {
		ok, err := path.Match(r.Glob, name)
		if err != nil || !ok {
			continue
		}
		if r.Ns != nil {
			eff.Ns = *r.Ns
		}
		if r.Bytes != nil {
			eff.Bytes = *r.Bytes
		}
		if r.Allocs != nil {
			eff.Allocs = *r.Allocs
		}
	}
	return eff
}

// Regression describes one tripped metric.
type Regression struct {
	Name     string
	Procs    int
	Metric   string
	Baseline float64
	Current  float64
	Limit    Limit
}

func (r Regression) String() string {
	allowed := r.Baseline*(1+r.Limit.Ratio) + r.Limit.Slack
	return fmt.Sprintf("%s (procs=%d) %s: baseline %.6g, current %.6g (allowed <= %.6g)",
		r.Name, r.Procs, r.Metric, r.Baseline, r.Current, allowed)
}

type key struct {
	pkg   string
	name  string
	procs int
}

// Compare checks every baseline benchmark against the current run and
// returns tripped metrics, baseline benchmarks missing from the current
// run, and the number of benchmark pairs compared.
func Compare(baseline, current *File, global Limits, rules []Rule) (regs []Regression, missing []string, compared int) {
	cur := make(map[key]Result, len(current.Benchmarks))
	for _, b := range current.Benchmarks {
		cur[key{pkgOf(current, b), b.Name, b.Procs}] = b
	}
	for _, base := range baseline.Benchmarks {
		k := key{pkgOf(baseline, base), base.Name, base.Procs}
		now, ok := cur[k]
		if !ok {
			missing = append(missing, fmt.Sprintf("%s (procs=%d)", base.Name, base.Procs))
			continue
		}
		compared++
		lim := limitsFor(base.Name, global, rules)
		if !lim.Ns.allows(base.NsPerOp, now.NsPerOp) {
			regs = append(regs, Regression{base.Name, base.Procs, "ns/op", base.NsPerOp, now.NsPerOp, lim.Ns})
		}
		if base.BytesPerOp != nil && now.BytesPerOp != nil &&
			!lim.Bytes.allows(float64(*base.BytesPerOp), float64(*now.BytesPerOp)) {
			regs = append(regs, Regression{base.Name, base.Procs, "B/op",
				float64(*base.BytesPerOp), float64(*now.BytesPerOp), lim.Bytes})
		}
		if base.AllocsPerOp != nil && now.AllocsPerOp != nil &&
			!lim.Allocs.allows(float64(*base.AllocsPerOp), float64(*now.AllocsPerOp)) {
			regs = append(regs, Regression{base.Name, base.Procs, "allocs/op",
				float64(*base.AllocsPerOp), float64(*now.AllocsPerOp), lim.Allocs})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Name != regs[j].Name {
			return regs[i].Name < regs[j].Name
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs, missing, compared
}

// pkgOf resolves a benchmark's package: the per-result field when the file
// spans several packages, else the file-level one.
func pkgOf(f *File, r Result) string {
	if r.Pkg != "" {
		return r.Pkg
	}
	return f.Pkg
}

// parseRule parses 'GLOB:METRIC=RATIO[+SLACK],...'; the glob may itself
// contain ':' only if no metric assignment would parse after it, so the
// split is on the LAST ':' that precedes a valid assignment list.
func parseRule(s string, defaults Limits) (Rule, error) {
	i := strings.LastIndex(s, ":")
	if i <= 0 || i == len(s)-1 {
		return Rule{}, fmt.Errorf("rule %q: want 'GLOB:METRIC=RATIO[+SLACK],...'", s)
	}
	r := Rule{Glob: s[:i]}
	if _, err := path.Match(r.Glob, "probe"); err != nil {
		return Rule{}, fmt.Errorf("rule %q: bad glob: %v", s, err)
	}
	for _, part := range strings.Split(s[i+1:], ",") {
		m, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return Rule{}, fmt.Errorf("rule %q: bad assignment %q", s, part)
		}
		var def Limit
		switch m {
		case "ns":
			def = defaults.Ns
		case "bytes":
			def = defaults.Bytes
		case "allocs":
			def = defaults.Allocs
		default:
			return Rule{}, fmt.Errorf("rule %q: unknown metric %q (want ns, bytes or allocs)", s, m)
		}
		lim := Limit{Slack: def.Slack}
		ratioStr, slackStr, hasSlack := strings.Cut(val, "+")
		ratio, err := strconv.ParseFloat(ratioStr, 64)
		if err != nil {
			return Rule{}, fmt.Errorf("rule %q: bad ratio %q", s, ratioStr)
		}
		lim.Ratio = ratio
		if hasSlack {
			slack, err := strconv.ParseFloat(slackStr, 64)
			if err != nil {
				return Rule{}, fmt.Errorf("rule %q: bad slack %q", s, slackStr)
			}
			lim.Slack = slack
		}
		switch m {
		case "ns":
			r.Ns = &lim
		case "bytes":
			r.Bytes = &lim
		case "allocs":
			r.Allocs = &lim
		}
	}
	return r, nil
}

// ruleFlags collects repeated -rule flags.
type ruleFlags struct {
	specs []string
}

func (r *ruleFlags) String() string     { return strings.Join(r.specs, "; ") }
func (r *ruleFlags) Set(s string) error { r.specs = append(r.specs, s); return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
}

func run() error {
	basePath := flag.String("baseline", "BENCH_quick.json", "committed baseline (benchjson format)")
	curPath := flag.String("current", "", "fresh run to check (benchjson format); required")
	nsRatio := flag.Float64("ns", 1.0, "allowed fractional ns/op growth (negative disables)")
	nsSlack := flag.Float64("ns-slack", 100000, "absolute ns/op allowance on top of the ratio")
	bytesRatio := flag.Float64("bytes", 0.5, "allowed fractional B/op growth (negative disables)")
	bytesSlack := flag.Float64("bytes-slack", 4096, "absolute B/op allowance on top of the ratio")
	allocsRatio := flag.Float64("allocs", 0.5, "allowed fractional allocs/op growth (negative disables)")
	allocsSlack := flag.Float64("allocs-slack", 8, "absolute allocs/op allowance on top of the ratio")
	strict := flag.Bool("strict", false, "fail when a baseline benchmark is missing from the current run")
	var rules ruleFlags
	flag.Var(&rules, "rule", "per-benchmark override 'GLOB:METRIC=RATIO[+SLACK],...' (repeatable)")
	flag.Parse()

	if *curPath == "" {
		return fmt.Errorf("-current is required")
	}
	global := Limits{
		Ns:     Limit{*nsRatio, *nsSlack},
		Bytes:  Limit{*bytesRatio, *bytesSlack},
		Allocs: Limit{*allocsRatio, *allocsSlack},
	}
	parsed := make([]Rule, 0, len(rules.specs))
	for _, spec := range rules.specs {
		r, err := parseRule(spec, global)
		if err != nil {
			return err
		}
		parsed = append(parsed, r)
	}

	baseline, err := load(*basePath)
	if err != nil {
		return err
	}
	current, err := load(*curPath)
	if err != nil {
		return err
	}

	regs, missing, compared := Compare(baseline, current, global, parsed)
	for _, m := range missing {
		fmt.Fprintf(os.Stderr, "benchdiff: missing from current run: %s\n", m)
	}
	for _, r := range regs {
		fmt.Printf("REGRESSION %s\n", r)
	}
	fmt.Printf("benchdiff: %d compared, %d regressed, %d missing (baseline %s)\n",
		compared, len(regs), len(missing), *basePath)
	if len(regs) > 0 || (*strict && len(missing) > 0) {
		os.Exit(1)
	}
	return nil
}

func load(path string) (*File, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &f, nil
}
