// Command smoothlb is the fleet front tier: it accepts netstream client
// sessions, places each on one of the configured smoothd backends by
// live buffer headroom and scraped step-lag, and relays the backend's
// wire stream back to the client with zero userspace copies on Linux
// (splice through a per-session pipe).
//
// Placement prefers the backend with the most free session slots,
// penalized by its p99 shard-step duration when -backend-metrics points
// at the backends' -debug listeners; backends that fail to dial are
// quarantined and re-probed, and a backend observed draining (its own
// SIGTERM drain, or SIGHUP here — see below) stops receiving sessions
// while in-flight relays run to completion.
//
// Admission control runs at the front door: with -admit-capacity set,
// the per-step demand samples of the synthetic clip (-frames, -seed —
// match the backends' flags) feed the paper's Chernoff admission bound
// once at startup, and each connection costs one atomic check against
// the precomputed ceiling.
//
// Signals: SIGINT/SIGTERM stop accepting, drain in-flight relays up to
// -drain, and exit 0. SIGHUP gracefully drains one backend (round-robin
// over the backend list, for operational rehearsal). SIGUSR1 dumps the
// diagnostic snapshot to stderr.
//
// Usage:
//
//	smoothlb [-listen :4320] -backends host1:4321,host2:4321
//	         [-backend-metrics host1:6060,host2:6060]
//	         [-shards N] [-max-sessions N] [-slots 10000]
//	         [-pending 4096] [-place-workers 16] [-replace-limit 3]
//	         [-admit-capacity 0] [-admit-eps 1e-6] [-frames 500] [-seed 1]
//	         [-drain 10s] [-debug localhost:6061]
package main

import (
	"errors"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/diag"
	"repro/internal/lb"
	"repro/internal/trace"
)

func main() {
	var (
		listen       = flag.String("listen", ":4320", "TCP listen address for client sessions")
		backendsCSV  = flag.String("backends", "", "comma-separated smoothd addresses (required)")
		metricsCSV   = flag.String("backend-metrics", "", "comma-separated backend -debug addresses for headroom/step-lag scraping (parallel to -backends; empty entries skip)")
		shards       = flag.Int("shards", runtime.GOMAXPROCS(0), "relay reactor shards")
		maxSessions  = flag.Int("max-sessions", 0, "concurrent session cap (0 = unlimited)")
		slots        = flag.Int("slots", 10000, "per-backend session capacity that headroom is scored against")
		pending      = flag.Int("pending", 4096, "pending-admit queue bound")
		placeWorkers = flag.Int("place-workers", 16, "concurrent placement (dial+handshake) workers")
		replaceLimit = flag.Int("replace-limit", 3, "re-placements per session before it fails")
		admitCap     = flag.Float64("admit-capacity", 0, "fleet capacity in units/step for Chernoff admission (0 = no admission gate)")
		admitEps     = flag.Float64("admit-eps", 1e-6, "per-step overflow probability bound for admission")
		frames       = flag.Int("frames", 500, "synthetic clip length for admission demand samples (match the backends)")
		seed         = flag.Int64("seed", 1, "synthetic clip seed for admission demand samples (match the backends)")
		drainWait    = flag.Duration("drain", 10*time.Second, "in-flight relay drain budget on shutdown")
		debugAddr    = flag.String("debug", "", "serve /metrics, /statusz, /debug/flightrec and /debug/pprof on this address (empty = off)")
	)
	flag.Parse()

	if *backendsCSV == "" {
		log.Fatalf("smoothlb: -backends is required")
	}
	backends := splitCSV(*backendsCSV)
	var metricsAddrs []string
	if *metricsCSV != "" {
		metricsAddrs = splitCSV(*metricsCSV)
		if len(metricsAddrs) != len(backends) {
			log.Fatalf("smoothlb: %d -backend-metrics entries for %d backends", len(metricsAddrs), len(backends))
		}
	}

	var gate *admission.Gate
	if *admitCap > 0 {
		cfg := trace.DefaultGenConfig()
		cfg.Frames = *frames
		cfg.Seed = *seed
		clip, err := trace.Generate(cfg)
		if err != nil {
			log.Fatalf("smoothlb: generating admission clip: %v", err)
		}
		samples := make([]int, len(clip.Frames))
		for i, f := range clip.Frames {
			samples[i] = f.Size
		}
		gate, err = admission.NewGate(samples, *admitCap, *admitEps, 1<<20)
		if err != nil {
			log.Fatalf("smoothlb: admission gate: %v", err)
		}
		log.Printf("smoothlb: admission ceiling %d streams at capacity %.0f units/step (eps %g)",
			gate.MaxStreams(), *admitCap, *admitEps)
	}

	eng, err := lb.New(lb.Config{
		Backends:     backends,
		MetricsAddrs: metricsAddrs,
		Shards:       *shards,
		MaxSessions:  *maxSessions,
		BackendSlots: *slots,
		PendingLimit: *pending,
		PlaceWorkers: *placeWorkers,
		ReplaceLimit: *replaceLimit,
		Gate:         gate,
		Instrument:   diag.RegisterRuntimeMetrics,
		OnSessionDone: func(s lb.SessionStats) {
			if s.Err != nil {
				log.Printf("smoothlb: session %d (backend %d): %v", s.ID, s.Backend, s.Err)
			}
		},
	})
	if err != nil {
		log.Fatalf("smoothlb: %v", err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("smoothlb: %v", err)
	}
	log.Printf("smoothlb: fronting %d backends on %s (%d shards, %d placement workers)",
		len(backends), ln.Addr(), *shards, *placeWorkers)

	dopts := diag.Options{
		Service:   "smoothlb",
		Registry:  eng.Obs(),
		Recorders: eng.FlightRecorders(),
	}
	if *debugAddr != "" {
		if _, err := diag.Start(*debugAddr, dopts); err != nil {
			log.Fatalf("smoothlb: %v", err)
		}
	}
	diag.NotifySIGUSR1(dopts)

	// SIGHUP drains one backend per signal, round-robin: an operational
	// rehearsal lever for rolling backend restarts.
	hupCh := make(chan os.Signal, 1)
	signal.Notify(hupCh, syscall.SIGHUP)
	go func() {
		next := 0
		for range hupCh {
			i := next % len(backends)
			next++
			if err := eng.DrainBackend(i); err != nil {
				log.Printf("smoothlb: drain backend: %v", err)
				continue
			}
			log.Printf("smoothlb: SIGHUP: draining backend %d (%s)", i, backends[i])
		}
	}()

	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			conn, err := ln.Accept()
			if err != nil {
				if !errors.Is(err, net.ErrClosed) {
					log.Printf("smoothlb: accept: %v", err)
				}
				return
			}
			// The handshake read blocks; keep the accept loop free.
			go func(c net.Conn) {
				if err := eng.Handle(c); err != nil {
					log.Printf("smoothlb: %v", err)
				}
			}(conn)
		}
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	sig := <-sigCh
	log.Printf("smoothlb: %v: stopping accept, draining relays (budget %v)", sig, *drainWait)

	ln.Close()
	<-acceptDone
	drained := eng.Drain(*drainWait)
	eng.Close()
	if drained {
		log.Printf("smoothlb: drained cleanly, bye")
	} else {
		log.Printf("smoothlb: drain budget exceeded, aborting in-flight relays")
	}
	if eng.SpliceFallbacks() > 0 {
		log.Printf("smoothlb: %d sessions relayed through the userspace fallback", eng.SpliceFallbacks())
	}
	os.Exit(0)
}

// splitCSV splits a comma-separated flag, trimming whitespace and keeping
// empty entries (an empty -backend-metrics slot disables scraping for
// that backend).
func splitCSV(s string) []string {
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
