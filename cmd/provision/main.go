// Command provision is the operator's calculator: given a trace (or a
// synthetic profile), it prints the full provisioning menu for carrying the
// stream —
//
//   - trace statistics and burstiness;
//   - the peak-reservation and truncation baselines;
//   - lossless smoothing: minimum rate per latency budget (B = R·D);
//   - lossy smoothing: minimum rate for a weighted-loss target;
//   - renegotiated CBR: peak/mean reservation and signalling frequency;
//   - admission control: how many copies of this stream fit a given link.
//
// Usage:
//
//	provision [-trace FILE] [-frames N] [-profile news|sports|movie]
//	          [-loss-target 0.01] [-capacity-factor 8] [-eps 0.001]
package main

import (
	"flag"
	"fmt"
	"os"

	"math"

	"repro/internal/admission"
	"repro/internal/alternatives"
	"repro/internal/lossless"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "provision:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		tracePath  = flag.String("trace", "", "trace file (default: synthetic)")
		frames     = flag.Int("frames", 2000, "synthetic clip length")
		seed       = flag.Int64("seed", 1, "synthetic clip seed")
		profile    = flag.String("profile", "news", "synthetic profile: news, sports or movie")
		lossTarget = flag.Float64("loss-target", 0.01, "weighted-loss target for lossy smoothing")
		capFactor  = flag.Float64("capacity-factor", 8, "admission link capacity in multiples of the mean rate")
		eps        = flag.Float64("eps", 1e-3, "admission overflow-probability target")
	)
	flag.Parse()

	clip, err := loadClip(*tracePath, *profile, *frames, *seed)
	if err != nil {
		return err
	}
	st, err := trace.WholeFrameStream(clip, trace.PaperWeights())
	if err != nil {
		return err
	}
	avg := clip.AverageRate()

	fmt.Println("— stream —")
	fmt.Printf("frames %d, mean %.1f units/frame, peak frame %d, peak/mean %.2f\n",
		len(clip.Frames), avg, clip.MaxFrameSize(), float64(clip.MaxFrameSize())/avg)
	demand := make([]float64, len(clip.Frames))
	samples := make([]int, len(clip.Frames))
	for i, f := range clip.Frames {
		demand[i] = float64(f.Size)
		samples[i] = f.Size
	}
	if len(demand) >= 8 {
		fmt.Printf("burstiness: IDC(16) %.1f, IDC(%d) %.1f; lag-1 autocorrelation %.2f\n",
			stats.IndexOfDispersion(demand, 16),
			len(demand)/4, stats.IndexOfDispersion(demand, len(demand)/4),
			stats.Autocorrelation(demand, 1)[1])
	}

	fmt.Println("\n— zero-delay baselines —")
	fmt.Printf("peak reservation: R = %d (%.2f x mean), zero loss, no buffer\n",
		alternatives.PeakRate(st), float64(alternatives.PeakRate(st))/avg)
	tr, err := alternatives.Truncation(st, int(avg))
	if err != nil {
		return err
	}
	fmt.Printf("truncation at mean rate: %.1f%% weighted loss, no buffer\n", 100*tr.WeightedLoss)

	fmt.Println("\n— smoothing (B = R*D) —")
	fmt.Printf("%8s %16s %18s %14s\n", "delay D", "lossless R/mean", "R/mean @ loss<=", "rcbr peak/mean")
	fmt.Printf("%8s %16s %18.4g %14s\n", "", "", *lossTarget, "")
	for _, D := range []int{1, 2, 4, 8, 16, 32, 64} {
		r0, err := lossless.MinRateForDelay(st, D)
		if err != nil {
			return err
		}
		r1, err := alternatives.MinRateForLoss(st, D, *lossTarget)
		if err != nil {
			return err
		}
		plan, err := alternatives.Renegotiate(st, D)
		if err != nil {
			return err
		}
		fmt.Printf("%8d %16.2f %18.2f %11.2f (%d renegs)\n",
			D, float64(r0)/avg, float64(r1)/avg, float64(plan.Peak)/avg, plan.Renegotiations)
	}

	fmt.Println("\n— admission control —")
	capacity := *capFactor * avg
	k, err := admission.MaxStreams(samples, capacity, *eps, 256)
	if err != nil {
		return err
	}
	fmt.Printf("link of %.0f units/step (%.1f x mean): admit %d streams at per-step overflow <= %g\n",
		capacity, *capFactor, k, *eps)
	for _, kk := range []int{k, k + 1} {
		if kk < 1 {
			continue
		}
		exp, err := admission.ChernoffExponent(samples, kk, capacity)
		if err != nil {
			return err
		}
		fmt.Printf("  K=%d: Chernoff overflow bound %.2e\n", kk, math.Exp(exp))
	}
	return nil
}

func loadClip(path, profile string, frames int, seed int64) (*trace.Clip, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.Read(f)
	}
	var cfg trace.GenConfig
	switch profile {
	case "news":
		cfg = trace.NewsProfile()
	case "sports":
		cfg = trace.SportsProfile()
	case "movie":
		cfg = trace.MovieProfile()
	default:
		return nil, fmt.Errorf("unknown profile %q", profile)
	}
	cfg.Frames = frames
	cfg.Seed = seed
	return trace.Generate(cfg)
}
