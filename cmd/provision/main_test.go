package main

import (
	"testing"
)

func TestLoadClipProfiles(t *testing.T) {
	for _, p := range []string{"news", "sports", "movie"} {
		clip, err := loadClip("", p, 50, 1)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if len(clip.Frames) != 50 {
			t.Errorf("%s: %d frames", p, len(clip.Frames))
		}
	}
	if _, err := loadClip("", "bogus", 50, 1); err == nil {
		t.Error("bogus profile accepted")
	}
	if _, err := loadClip("/nonexistent/trace.txt", "news", 50, 1); err == nil {
		t.Error("missing trace file accepted")
	}
}
