// Quickstart: smooth a synthetic MPEG clip through a buffer of four max
// frames, with the link 10% below the stream's average rate, and compare
// the drop policies against the exact offline optimum.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/drop"
	"repro/internal/offline"
	"repro/internal/trace"
)

func main() {
	// 1. A video source: ~80 seconds of synthetic MPEG-1 calibrated to
	//    the paper's clips (mean frame 38 KB, max 120 KB, I/P/B weights
	//    12:8:1). One unit = 1 KB, one step = one frame time.
	cfg := trace.DefaultGenConfig()
	cfg.Frames = 2000
	clip, err := trace.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st, err := trace.ByteSliceStream(clip, trace.PaperWeights())
	if err != nil {
		log.Fatal(err)
	}

	// 2. Provision the system: link at 90% of the average rate (we WILL
	//    lose data — the question is which data), buffer of 4 max frames,
	//    and the smoothing delay from the B = R·D law.
	R := int(0.9 * clip.AverageRate())
	B := 4 * clip.MaxFrameSize()
	fmt.Printf("clip: %d frames, avg %.1f KB/frame, peak %d KB\n",
		len(clip.Frames), clip.AverageRate(), clip.MaxFrameSize())
	fmt.Printf("link: %d KB/step (90%% of average) — loss is unavoidable\n", R)
	fmt.Printf("buffer: %d KB  =>  smoothing delay D = %d steps (B = R*D)\n\n", B, core.DelayFor(B, R))

	// 3. Run every drop policy.
	fmt.Printf("%-10s %12s %14s\n", "policy", "byte loss", "weighted loss")
	for _, f := range []drop.Factory{drop.TailDrop, drop.HeadDrop, drop.Greedy} {
		s, err := core.Simulate(st, core.Config{ServerBuffer: B, Rate: R, Policy: f})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %11.2f%% %13.2f%%\n", s.Algorithm[len("generic/"):],
			100*s.ByteLoss(), 100*s.WeightedLoss())
	}

	// 4. And the exact offline optimum for comparison.
	opt, err := offline.OptimalUnit(st, B, R)
	if err != nil {
		log.Fatal(err)
	}
	total := st.TotalWeight()
	fmt.Printf("%-10s %11s %13.2f%%\n\n", "optimal", "-", 100*(total-opt.Benefit)/total)

	fmt.Println("All policies lose the same ~10% of the BYTES (Theorem 3.5: with")
	fmt.Println("B = R*D the byte count lost is optimal no matter what you drop).")
	fmt.Println("The weighted loss differs enormously: greedy sheds cheap B-frame")
	fmt.Println("data and keeps I/P frames, landing within a whisker of the")
	fmt.Println("offline optimum — the paper's Section 5 story in one table.")
}
