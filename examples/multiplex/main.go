// Multiplex: admission control plus shared smoothing. An operator has one
// link and wants to carry as many live streams as possible:
//
//  1. effective-bandwidth admission control (Chernoff bound) decides how
//     many streams to admit for a target overflow probability;
//  2. a shared smoothing buffer carries the admitted streams, and the
//     measured loss comes in far below the bufferless bound;
//  3. the same total resources split into private per-stream partitions
//     lose much more — the statistical multiplexing gain.
//
// Run with: go run ./examples/multiplex
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/admission"
	"repro/internal/drop"
	"repro/internal/mux"
	"repro/internal/stream"
	"repro/internal/trace"
)

func main() {
	const frames = 1200

	// The operator knows the content class (news) and has one historical
	// trace to train the admission test on.
	train := demand(1, frames)
	var mean float64
	for _, x := range train {
		mean += float64(x)
	}
	mean /= float64(len(train))

	capacity := 6 * mean // link carries ~6 average streams
	const eps = 0.05
	k, err := admission.MaxStreams(train, capacity, eps, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("link capacity: %.0f KB/step (%.1f x one stream's mean)\n", capacity, capacity/mean)
	fmt.Printf("admission control: admit %d streams at per-step overflow <= %.0f%%\n\n", k, 100*eps)

	// Live traffic: K independent streams (fresh seeds — the training
	// trace is NOT reused).
	var streams []*stream.Stream
	var vectors [][]int
	overload := int(capacity/mean) + 1 // more average streams than the link can carry
	for i := 0; i < overload; i++ {
		gc := trace.DefaultGenConfig()
		gc.Frames = frames
		gc.Seed = int64(1000 + i)
		clip, err := trace.Generate(gc)
		if err != nil {
			log.Fatal(err)
		}
		st, err := trace.WholeFrameStream(clip, trace.PaperWeights())
		if err != nil {
			log.Fatal(err)
		}
		streams = append(streams, st)
		vectors = append(vectors, demand(int64(1000+i), frames))
	}

	// The Chernoff bound versus reality, bufferless, at the admitted count.
	exp, err := admission.ChernoffExponent(train, k, capacity)
	if err != nil {
		log.Fatal(err)
	}
	measured, err := admission.MeasuredOverflow(vectors[:k], capacity)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bufferless overflow at K=%d: Chernoff bound %.3f, measured %.3f\n\n", k, math.Exp(exp), measured)

	// Carry the admitted load, and then deliberately overload past the
	// link's mean capacity, with and without a shared smoothing buffer
	// (4 max frames per stream either way).
	fmt.Printf("%22s %14s %14s\n", "", "shared wloss", "partitioned")
	for _, kk := range []int{k, overload} {
		totalBuffer := kk * 4 * 120
		shared, err := mux.Shared(streams[:kk], int(capacity), totalBuffer, drop.Greedy)
		if err != nil {
			log.Fatal(err)
		}
		part, err := mux.Partitioned(streams[:kk], int(capacity), totalBuffer, drop.Greedy)
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("K=%d (admitted)", kk)
		if kk > k {
			label = fmt.Sprintf("K=%d (overloaded)", kk)
		}
		fmt.Printf("%22s %13.3f%% %13.3f%%\n", label, 100*shared.WeightedLoss(), 100*part.WeightedLoss())
		if shared.WeightedLoss() > part.WeightedLoss()+1e-9 {
			log.Fatal("no multiplexing gain — unexpected for independent streams")
		}
		if kk > k {
			fmt.Println("\nper-stream weighted loss under the overloaded shared buffer:")
			for i, m := range shared.PerStream {
				fmt.Printf("  stream %d: %.3f%%\n", i, 100*m.WeightedLoss())
			}
		}
	}

	fmt.Println("\nAdmission control sizes the link conservatively; the shared")
	fmt.Println("smoothing buffer absorbs what the bufferless bound must count as")
	fmt.Println("lost, degrades gracefully under overload, and spreads the damage")
	fmt.Println("evenly — while private partitions forfeit the multiplexing gain.")
}

// demand generates one clip's per-step demand vector.
func demand(seed int64, frames int) []int {
	gc := trace.DefaultGenConfig()
	gc.Frames = frames
	gc.Seed = seed
	clip, err := trace.Generate(gc)
	if err != nil {
		log.Fatal(err)
	}
	out := make([]int, len(clip.Frames))
	for i, f := range clip.Frames {
		out[i] = f.Size
	}
	return out
}
