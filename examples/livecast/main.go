// Livecast: a real end-to-end session over TCP loopback. A server paces a
// live synthetic clip through a smoothing buffer at 95% of the stream's
// average rate; the client connects with a latency budget, negotiates
// B = R·D, reconstructs the stream with the paper's timer-based playout,
// and verifies every payload byte.
//
// Run with: go run ./examples/livecast
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/netstream"
	"repro/internal/trace"
)

func main() {
	cfg := trace.DefaultGenConfig()
	cfg.Frames = 400
	clip, err := trace.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rate := int(0.95 * clip.AverageRate())
	fmt.Printf("live clip: %d frames, avg %.1f KB/frame; pacing at %d KB/step\n",
		len(clip.Frames), clip.AverageRate(), rate)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()

	serveErr := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			serveErr <- err
			return
		}
		defer conn.Close()
		serveErr <- netstream.Serve(conn, clip, trace.PaperWeights(), netstream.ServeConfig{
			Rate:         rate,
			StepDuration: 2 * time.Millisecond, // 500 steps/s so the demo finishes quickly
			MaxDelay:     64,
		})
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	start := time.Now()
	const latencyBudget = 24 // steps the viewer will tolerate
	stats, err := netstream.Receive(conn, 0, latencyBudget, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		log.Fatal(err)
	}

	fmt.Printf("negotiated smoothing delay: %d steps (B = R*D = %d KB)\n",
		stats.Delay, rate*stats.Delay)
	fmt.Printf("session wall time:          %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("frames played:              %d of %d\n", stats.Played, len(clip.Frames))
	fmt.Printf("frames lost to congestion:  %d\n", len(clip.Frames)-stats.Played)
	fmt.Printf("payload verified:           %d KB, %d corrupt\n", stats.PlayedBytes, stats.Corrupt)
	fmt.Printf("client peak buffer:         %d KB (bound R*D = %d)\n", stats.MaxBuffer, rate*stats.Delay)

	if stats.Corrupt > 0 {
		log.Fatal("payload corruption detected")
	}
	if stats.MaxBuffer > rate*stats.Delay {
		log.Fatal("client buffer exceeded the R*D bound — Lemma 3.4 violated")
	}
	fmt.Println("\nThe link runs 5% below the source rate, so the smoothing buffer")
	fmt.Println("must shed a few whole frames (greedy keeps the valuable ones);")
	fmt.Println("everything that is played arrives on time within the R*D client")
	fmt.Println("buffer, with no clock synchronization between the endpoints.")
}
