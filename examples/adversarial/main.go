// Adversarial: play the lower-bound games of Section 4 against the
// implemented online policies.
//
//  1. The Theorem 4.7 instance drives the greedy policy to a competitive
//     ratio approaching 2 as α and B grow.
//  2. The Theorem 4.8 adaptive adversary (truncate-or-burst) forces EVERY
//     deterministic online policy above ≈1.2287 (α=2), and above ≈1.28197
//     with the Lotker/Sviridenko refinement (α≈4.015).
//
// Run with: go run ./examples/adversarial
package main

import (
	"fmt"
	"log"

	"repro/internal/competitive"
	"repro/internal/drop"
)

func main() {
	fmt.Println("— Theorem 4.7: the anti-greedy instance —")
	fmt.Println("weight-1 slices fill the buffer; then a drip of weight-α slices keeps")
	fmt.Println("it full (greedy hoards them); finally an α-burst forces mass drops.")
	fmt.Printf("\n%8s %8s %12s %12s\n", "B", "alpha", "measured", "predicted")
	for _, tc := range []struct {
		B     int
		alpha float64
	}{{8, 2}, {16, 8}, {32, 32}, {64, 128}, {128, 512}} {
		st, err := competitive.GreedyLowerBoundInstance(tc.B, tc.alpha)
		if err != nil {
			log.Fatal(err)
		}
		ratio, _, _, err := competitive.MeasureRatio(st, tc.B, 1, drop.Greedy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %8.0f %12.4f %12.4f\n",
			tc.B, tc.alpha, ratio, competitive.PredictedGreedyRatio(tc.B, tc.alpha))
	}
	fmt.Println("\nThe measured ratio equals the closed form exactly and approaches 2.")

	fmt.Println("\n— Theorem 4.8: the two-scenario adversary vs every policy —")
	fmt.Println("The adversary watches when the policy sends its last weight-1 slice")
	fmt.Println("and then either stops the stream (you hoarded for nothing) or slams")
	fmt.Println("it with a burst (you hoarded too little).")
	const B = 32
	for _, alpha := range []float64{2, 4.015} {
		fmt.Printf("\nα = %v (theoretical lower bound for ANY deterministic policy: %.5f)\n",
			alpha, competitive.PredictedOnlineLB(alpha))
		for _, f := range []drop.Factory{drop.Greedy, drop.TailDrop, drop.HeadDrop} {
			res, err := competitive.OnlineLowerBoundGame(f, B, alpha, 3*B)
			if err != nil {
				log.Fatal(err)
			}
			scenario := "truncate"
			if res.Burst {
				scenario = "burst"
			}
			fmt.Printf("  %-9s forced to %.4f  (cut at t=%d, %s scenario, online %.0f vs opt %.0f)\n",
				f().Name(), res.Ratio, res.StopStep, scenario, res.Online, res.Opt)
		}
	}
	fmt.Println("\nNo online policy escapes: lossy smoothing has an inherent price of")
	fmt.Println("not knowing the future, and the paper pins it between 1.2287 and 4.")
}
