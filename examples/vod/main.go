// VOD provisioning: given a stored clip and two of the three resources
// (buffer, delay, link rate), compute the third with the B = R·D law and
// the zero-loss calculators, then verify the provisioning by simulation.
//
// This is the "simple setup protocol" the paper sketches in Section 3.3:
// a client advertises its buffer or its latency budget, and the required
// bandwidth follows.
//
// Run with: go run ./examples/vod
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/lossless"
	"repro/internal/stream"
	"repro/internal/trace"
)

func main() {
	cfg := trace.DefaultGenConfig()
	cfg.Frames = 1500
	clip, err := trace.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st, err := trace.WholeFrameStream(clip, trace.PaperWeights())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clip: %d frames, avg %.1f KB/frame, peak frame %d KB, peak-to-mean %.2f\n\n",
		len(clip.Frames), clip.AverageRate(), clip.MaxFrameSize(),
		float64(clip.MaxFrameSize())/clip.AverageRate())

	// Scenario 1: the client tolerates a latency budget; what bandwidth
	// must we reserve for ZERO loss, and how much buffer does that need?
	fmt.Println("scenario 1 — latency budget given, compute rate and buffer:")
	fmt.Printf("%8s %14s %14s %16s\n", "delay D", "min rate R", "buffer B=RD", "R / avg rate")
	for _, D := range []int{1, 4, 16, 64, 256} {
		R, err := lossless.MinRateForDelay(st, D)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %11d KB %11d KB %16.2f\n", D, R, R*D, float64(R)/clip.AverageRate())
		verifyLossless(st, R*D, R, D)
	}

	// Scenario 2: the link rate is fixed (say, 95% of the average — the
	// stream cannot fit losslessly below 100% in the long run unless the
	// buffer absorbs everything); compute the buffer and delay.
	fmt.Println("\nscenario 2 — rate given, compute buffer and delay:")
	fmt.Printf("%14s %14s %10s\n", "rate (x avg)", "min buffer", "delay")
	for _, f := range []float64{1.0, 1.1, 1.3, 1.6, 2.0} {
		R := int(f * clip.AverageRate())
		B, err := lossless.MinBuffer(st, R)
		if err != nil {
			log.Fatal(err)
		}
		D := core.DelayFor(B, R)
		fmt.Printf("%14.1f %11d KB %10d\n", f, B, D)
		verifyLossless(st, B, R, D)
	}

	fmt.Println("\nEvery row verified by simulation: zero slices dropped at the")
	fmt.Println("computed provisioning — the tradeoff of Theorem 3.5 is exactly tight.")
}

// verifyLossless simulates and aborts if the provisioning loses anything.
func verifyLossless(st *stream.Stream, B, R, D int) {
	s, err := core.Simulate(st, core.Config{ServerBuffer: B, Rate: R, Delay: D})
	if err != nil {
		log.Fatal(err)
	}
	if s.DroppedSlices() != 0 {
		log.Fatalf("provisioning B=%d R=%d D=%d dropped %d slices", B, R, D, s.DroppedSlices())
	}
}
