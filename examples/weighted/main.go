// Weighted dropping: when the link cannot carry everything, WHICH data you
// drop decides the perceived quality. This example runs the same congested
// session (rate at 85% of the average) with Tail-Drop and with the paper's
// greedy value-aware policy, and breaks the losses down per MPEG frame
// type. It also shows the competitive guarantee of Theorem 4.1 holding on
// an adversarial instance.
//
// Run with: go run ./examples/weighted
package main

import (
	"fmt"
	"log"

	"repro/internal/competitive"
	"repro/internal/core"
	"repro/internal/drop"
	"repro/internal/sched"
	"repro/internal/trace"
)

func main() {
	cfg := trace.DefaultGenConfig()
	cfg.Frames = 1500
	clip, err := trace.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st, err := trace.ByteSliceStream(clip, trace.PaperWeights())
	if err != nil {
		log.Fatal(err)
	}
	R := int(0.85 * clip.AverageRate())
	B := 6 * clip.MaxFrameSize()
	fmt.Printf("congested session: R = %d KB/step (85%% of average), B = %d KB, D = %d steps\n\n",
		R, B, core.DelayFor(B, R))

	// Index slice IDs back to frame types for the loss breakdown.
	types := sliceTypes(clip)

	for _, f := range []drop.Factory{drop.TailDrop, drop.Greedy} {
		s, err := core.Simulate(st, core.Config{ServerBuffer: B, Rate: R, Policy: f})
		if err != nil {
			log.Fatal(err)
		}
		lost := map[trace.FrameType]int{}
		kept := map[trace.FrameType]int{}
		for id, o := range s.Outcomes {
			if o.Dropped() {
				lost[types[id]] += st.Slice(id).Size
			} else {
				kept[types[id]] += st.Slice(id).Size
			}
		}
		fmt.Printf("%s: byte loss %.2f%%, weighted loss %.2f%%\n",
			s.Algorithm, 100*s.ByteLoss(), 100*s.WeightedLoss())
		for _, ft := range []trace.FrameType{trace.I, trace.P, trace.B} {
			total := lost[ft] + kept[ft]
			if total == 0 {
				continue
			}
			fmt.Printf("   %s-frame data lost: %6.2f%%  (%d of %d KB)\n",
				ft, 100*float64(lost[ft])/float64(total), lost[ft], total)
		}
		if s.DroppedAt(sched.SiteClient) != 0 {
			log.Fatal("unexpected client drops with lawful provisioning")
		}
		fmt.Println()
	}

	fmt.Println("Tail-Drop guts whatever arrives during a burst — including")
	fmt.Println("I-frames. Greedy concentrates ALL the damage on B-frames.")

	// The guarantee: even on the adversarial instance of Theorem 4.7 the
	// greedy policy keeps at least 1/4 of the optimal benefit (Thm 4.1).
	const bb = 24
	inst, err := competitive.GreedyLowerBoundInstance(bb, 50)
	if err != nil {
		log.Fatal(err)
	}
	ratio, online, opt, err := competitive.MeasureRatio(inst, bb, 1, drop.Greedy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nadversarial instance (Thm 4.7, B=%d, α=50): greedy %.0f vs optimal %.0f — ratio %.3f\n",
		bb, online, opt, ratio)
	fmt.Printf("prediction %.3f; Theorem 4.1 caps it at 4. The adversary gets close\n",
		competitive.PredictedGreedyRatio(bb, 50))
	fmt.Println("to 2, real traces stay near 1 (Fig. 2/3): greedy is near-optimal in practice.")
}

// sliceTypes maps each byte-slice ID to its frame's type.
func sliceTypes(clip *trace.Clip) []trace.FrameType {
	var out []trace.FrameType
	for _, f := range clip.Frames {
		for i := 0; i < f.Size; i++ {
			out = append(out, f.Type)
		}
	}
	return out
}
