// Package repro reproduces "Optimal smoothing schedules for real-time
// streams" by Mansour, Patt-Shamir and Lapid (PODC 2000; Distributed
// Computing 2004): the generic lossy smoothing algorithm and its B = R·D
// law, the 4-competitive greedy drop policy, the online lower bounds, and
// the MPEG smoothing experiments of Section 5.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-vs-measured record. The library lives under
// internal/ (stream, sched, core, drop, offline, trace, competitive,
// lossless, linksim, netstream, experiment, stats); runnable tools under
// cmd/ and examples under examples/.
//
// The benchmarks in bench_test.go regenerate every figure and table:
//
//	go test -bench=Fig -benchmem .
package repro
