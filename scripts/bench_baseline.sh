#!/bin/sh
# Record the benchmark suite in the committed-baseline protocol and convert
# it to benchjson format. Usage:
#
#   scripts/bench_baseline.sh [OUT.json]     (default: BENCH_quick.json)
#
# The protocol is a fixed iteration count (-benchtime 5x) so bytes/op and
# allocs/op are deterministic, plus a second pass over BenchmarkSweepWorkers
# at -cpu 1,4 to record the sweep-parallelism profile on multi-core hosts.
# scripts/verify.sh runs the identical protocol and diffs the result against
# BENCH_quick.json with cmd/benchdiff; run this script (with no argument)
# and commit the result after an intentional performance change.
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_quick.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go build -o bin/benchjson ./cmd/benchjson

go test -run '^$' -bench . -benchmem -benchtime 5x ./... > "$tmp"
go test -run '^$' -bench '^BenchmarkSweepWorkers$' -benchmem -benchtime 5x \
    -cpu 1,4 . >> "$tmp"

bin/benchjson -in "$tmp" -out "$out"
echo "bench baseline written to $out"

# Record the fleet tier's direct-vs-through-LB step-lag delta next to the
# baseline: benchjson keeps only ns/bytes/allocs, so the fleet bench's
# custom metrics (direct-p99-µs, lb-p99-µs, lag-overhead-%, sessions/s)
# live in a text sidecar, refreshed on the same protocol as the baseline.
fleet="${out%.json}_fleet.txt"
if grep -E '^BenchmarkFleetLoopback' "$tmp" > "$fleet"; then
    echo "fleet lag delta written to $fleet"
else
    rm -f "$fleet"
    echo "no fleet bench lines recorded (non-linux host?)" >&2
fi
