#!/bin/sh
# Extended verification: everything tier-1 runs (build + tests) plus vet,
# formatting, and the race detector over the whole module. CI runs this
# script; run it locally before sending a change.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -s"
unformatted=$(gofmt -s -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt -s needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== smoothvet"
# Project-specific analyzers (aliasing, determinism, hot-path allocations,
# error hygiene); see DESIGN.md "Enforced invariants".
go build -o bin/smoothvet ./cmd/smoothvet
go vet -vettool=bin/smoothvet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race"
go test -race ./...

echo "== bench smoke"
# One iteration of every benchmark so they cannot bit-rot; timings are
# meaningless at -benchtime 1x and intentionally discarded.
go test -run NONE -bench . -benchtime 1x ./... > /dev/null

echo "verify: OK"
