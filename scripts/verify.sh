#!/bin/sh
# Extended verification: everything tier-1 runs (build + tests) plus vet,
# formatting, and the race detector over the whole module. CI runs this
# script; run it locally before sending a change.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -s"
unformatted=$(gofmt -s -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt -s needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== smoothvet"
# Project-specific analyzers (aliasing, shard confinement, publication
# immutability, determinism, clock discipline, atomic pairing, hot-path
# allocations, error hygiene); see DESIGN.md "Enforced invariants". The
# run is timed against a generous wall-clock budget: the flow-sensitive
# engine must stay cheap enough to run on every push, and a quadratic
# blow-up in the CFG or call-graph layer should fail loudly here, not
# slowly rot CI.
go build -o bin/smoothvet ./cmd/smoothvet
smoothvet_start=$(date +%s)
go vet -vettool=bin/smoothvet ./...
smoothvet_elapsed=$(( $(date +%s) - smoothvet_start ))
echo "smoothvet: ${smoothvet_elapsed}s"
if [ "$smoothvet_elapsed" -gt 120 ]; then
    echo "smoothvet took ${smoothvet_elapsed}s (budget 120s); profile the analyzers" >&2
    exit 1
fi

echo "== go build"
go build ./...

echo "== go build (darwin)"
# Cross-compile for a second GOOS: the loadgen reactor is split into
# linux (epoll) and stub variants by build tags, and only a cross-build
# catches a symbol that drifted out of the shared surface.
GOOS=darwin go build ./...

echo "== go test"
go test ./...

echo "== go test -race"
go test -race ./...

echo "== loopback capacity smoke (1k sessions)"
# One real client-engine wave against a real serving engine over loopback
# TCP — the cheap end-to-end check that the sharded client reactor, the
# wire framing and the playout accounting still work together at density.
# The test also scrapes /metrics mid-wave and asserts the key series: the
# active-sessions gauge reaches the wave size and the step-lag histogram
# fills while traffic flows.
LOADGEN_SMOKE=1000 go test -count=1 -run '^TestLoopbackCapacitySmoke$' ./internal/loadgen

echo "== fleet relay smoke (1k sessions, mid-wave backend drain)"
# The same wave shape through the front tier: loadgen -> smoothlb engine
# -> two serving engines, with a graceful backend drain landing mid-wave.
# Zero client-visible failures are required across the drain, the drained
# backend's placement tail must stay bounded, and the splice-fallback
# counter must read zero — every relayed byte moved kernel-to-kernel.
LB_SMOKE=1000 go test -count=1 -run '^TestFleetSmoke$' ./internal/lb

echo "== bench + regression gate"
# Run every benchmark at the same short protocol the committed baseline was
# recorded with (-benchtime 5x; BenchmarkSweepWorkers additionally at
# -cpu 1,4), then gate on BENCH_quick.json via cmd/benchdiff. Allocation
# metrics are deterministic at a fixed iteration count and held tight —
# the simulation core must stay allocation-free (see DESIGN.md "Memory
# layout & amortization"); wall-clock ratios stay generous because CI
# machines are noisy. Refresh the baseline with scripts/bench_baseline.sh
# after an intentional performance change.
go build -o bin/benchjson ./cmd/benchjson
go build -o bin/benchdiff ./cmd/benchdiff
./scripts/bench_baseline.sh bin/bench_current.json
# Global thresholds are generous (sync.Pool hit rates vary with GC timing,
# so pooled-arena benchmarks have some alloc jitter); the allocation-free
# core paths get tight per-benchmark rules, and the parallel sweep variants
# — whose pool misses depend on goroutine scheduling — get looser ones.
# The cohort-served density benchmark is pinned at exactly zero steady-state
# allocations: the whole point of the compute-once layer is that a shard
# tick over 100k sessions touches no allocator at all. The client engine's
# per-step path (BenchmarkLoadgenStep) carries the same zero pin — the dual
# invariant for the receiving side — as does the observability record path
# (BenchmarkObsRecord): a metric increment, histogram observation or
# flight-recorder append must never touch the allocator. The end-to-end
# loopback waves
# get wide bounds: one op there is a full wave of real dials and sessions,
# so both timing and the dial-path allocation count wobble with the host.
bin/benchdiff -baseline BENCH_quick.json -current bin/bench_current.json \
    -ns 1.5 -bytes 1.0 -bytes-slack 16384 -allocs 1.0 -allocs-slack 64 \
    -rule 'BenchmarkServerStep:allocs=0.0+4,bytes=0.0+4096' \
    -rule 'BenchmarkSimulate/*:allocs=0.0+4,bytes=0.0+4096' \
    -rule 'BenchmarkSweepWorkers/*/par:allocs=4.0+256,bytes=4.0+65536' \
    -rule 'BenchmarkEngineStepDensity/cohort/*:allocs=0.0+0,bytes=0.0+0' \
    -rule 'BenchmarkLoadgenStep/*:allocs=0.0+0,bytes=0.0+0' \
    -rule 'BenchmarkObsRecord/*:allocs=0.0+0,bytes=0.0+0' \
    -rule 'BenchmarkLoopback/*:ns=3.0+1000000000,allocs=0.3+8192,bytes=0.5+8388608' \
    -rule 'BenchmarkLBRelayStep/*:allocs=0.0+0,bytes=0.0+0' \
    -rule 'BenchmarkFleetLoopback/*:ns=3.0+1000000000,allocs=0.3+8192,bytes=0.5+8388608'

echo "verify: OK"
