package repro

// Benchmarks that regenerate every figure and table of the paper (reduced
// "quick" scale so iterations stay in the hundreds of milliseconds; run
// cmd/experiments for the full-scale tables), plus micro-benchmarks of the
// core data paths.

import (
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/drop"
	"repro/internal/experiment"
	"repro/internal/lossless"
	"repro/internal/offline"
	"repro/internal/stream"
	"repro/internal/trace"
)

// benchExperiment runs one registered experiment per iteration at a fixed
// sweep worker count (0 = the Config default, GOMAXPROCS).
func benchExperimentWorkers(b *testing.B, name string, workers int) {
	b.Helper()
	runner := experiment.All()[name]
	if runner == nil {
		b.Fatalf("experiment %q not registered", name)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := runner(experiment.Config{Quick: true, Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// benchExperiment runs one registered experiment per iteration with the
// default worker count.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	benchExperimentWorkers(b, name, 0)
}

// BenchmarkSweepWorkers compares sequential (Workers=1) against parallel
// (Workers=GOMAXPROCS) sweeps on representative experiments. On a 1-CPU
// host the two run at the same speed; on multi-core hosts the parallel
// variant should approach a core-count speedup because sweep points are
// independent simulations.
func BenchmarkSweepWorkers(b *testing.B) {
	for _, name := range []string{"fig2", "brd", "muxgain", "robust"} {
		b.Run(name+"/seq", func(b *testing.B) { benchExperimentWorkers(b, name, 1) })
		b.Run(name+"/par", func(b *testing.B) { benchExperimentWorkers(b, name, runtime.GOMAXPROCS(0)) })
	}
}

// One benchmark per paper artefact (see DESIGN.md §5).

func BenchmarkFig2(b *testing.B)             { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)             { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)             { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)             { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)             { benchExperiment(b, "fig6") }
func BenchmarkTableBRD(b *testing.B)         { benchExperiment(b, "brd") }
func BenchmarkTableBufferRatio(b *testing.B) { benchExperiment(b, "bufratio") }
func BenchmarkTableVarSlices(b *testing.B)   { benchExperiment(b, "varslices") }
func BenchmarkTableGreedyUB(b *testing.B)    { benchExperiment(b, "greedyub") }
func BenchmarkTableGreedyLB(b *testing.B)    { benchExperiment(b, "greedylb") }
func BenchmarkTableOnlineLB(b *testing.B)    { benchExperiment(b, "onlinelb") }
func BenchmarkTableLossless(b *testing.B)    { benchExperiment(b, "lossless") }

// ---------------------------------------------------------------------------
// Micro-benchmarks of the core data paths.
// ---------------------------------------------------------------------------

func benchClip(b *testing.B, frames int) *trace.Clip {
	b.Helper()
	cfg := trace.DefaultGenConfig()
	cfg.Frames = frames
	clip, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return clip
}

func benchByteStream(b *testing.B, frames int) *stream.Stream {
	b.Helper()
	st, err := trace.ByteSliceStream(benchClip(b, frames), trace.PaperWeights())
	if err != nil {
		b.Fatal(err)
	}
	return st
}

func benchFrameStream(b *testing.B, frames int) *stream.Stream {
	b.Helper()
	st, err := trace.WholeFrameStream(benchClip(b, frames), trace.PaperWeights())
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkServerStep measures one server step in steady state; with the
// reusable result buffers in core.Server and the allocation-free drop
// policies this sits at (amortized) zero allocs/op once the backing arrays
// have grown to the working size.
func BenchmarkServerStep(b *testing.B) {
	st := benchByteStream(b, 1000)
	horizon := st.Horizon()
	pol := drop.NewGreedy()
	sv := core.NewServer(480, 35, pol, core.ServerOptions{})
	reset := func() {
		// Recycle the policy and reset the server in place, retaining all
		// backing arrays; steady-state steps then allocate nothing.
		drop.Recycle(pol)
		pol = drop.NewGreedy()
		sv.Reset(480, 35, pol, core.ServerOptions{})
	}
	// Warm up one full drain so every backing array reaches its working
	// size before measurement starts.
	for t := 0; t <= horizon || !sv.Empty(); t++ {
		sv.Step(t, st.ArrivalsAt(t))
	}
	reset()
	b.ReportAllocs()
	t := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if t > horizon && sv.Empty() {
			// Stream exhausted and drained: restart from step 0 so slice
			// IDs never collide, without timing the reset.
			b.StopTimer()
			reset()
			t = 0
			b.StartTimer()
		}
		sv.Step(t, st.ArrivalsAt(t))
		t++
	}
}

// BenchmarkSimulate measures the full-system simulator on a byte-sliced
// 1000-frame clip (~38k unit slices) per policy, through a reused
// core.Runner arena — the path every sweep takes. After the first (untimed)
// run grows the arena to the stream's working size, iterations are
// allocation-free.
func BenchmarkSimulate(b *testing.B) {
	st := benchByteStream(b, 1000)
	cfg := func(f drop.Factory) core.Config {
		return core.Config{ServerBuffer: 480, Rate: 35, Policy: f}
	}
	for _, tc := range []struct {
		name string
		f    drop.Factory
	}{{"TailDrop", drop.TailDrop}, {"HeadDrop", drop.HeadDrop}, {"Greedy", drop.Greedy}} {
		b.Run(tc.name, func(b *testing.B) {
			r := core.NewRunner()
			if _, err := r.Run(st, cfg(tc.f)); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Run(st, cfg(tc.f)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOptimalUnit measures the matroid-greedy offline optimum on the
// byte-sliced clip.
func BenchmarkOptimalUnit(b *testing.B) {
	st := benchByteStream(b, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := offline.OptimalUnit(st, 480, 35); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimalFrames measures the occupancy DP on whole-frame slices.
func BenchmarkOptimalFrames(b *testing.B) {
	st := benchFrameStream(b, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := offline.OptimalFrames(st, 480, 35); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceGenerate measures the synthetic MPEG generator.
func BenchmarkTraceGenerate(b *testing.B) {
	cfg := trace.DefaultGenConfig()
	cfg.Frames = 2000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinRate measures the O(T^2) zero-loss rate calculator.
func BenchmarkMinRate(b *testing.B) {
	st := benchFrameStream(b, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lossless.MinRate(st, 480); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoredPlan measures the taut-string optimal stored-video plan.
func BenchmarkStoredPlan(b *testing.B) {
	clip := benchClip(b, 1000)
	demand := make([]int, len(clip.Frames))
	for i, f := range clip.Frames {
		demand[i] = f.Size
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lossless.OptimalStoredPlan(demand, 480, 12); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValidate measures the schedule validator on a lossy run.
func BenchmarkValidate(b *testing.B) {
	st := benchByteStream(b, 500)
	s, err := core.Simulate(st, core.Config{ServerBuffer: 480, Rate: 33, Policy: drop.Greedy})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// Extension-experiment benchmarks (see internal/experiment/extensions.go).

func BenchmarkTableMuxGain(b *testing.B)      { benchExperiment(b, "muxgain") }
func BenchmarkTableAlternatives(b *testing.B) { benchExperiment(b, "alternatives") }
func BenchmarkTableDecode(b *testing.B)       { benchExperiment(b, "decode") }
func BenchmarkTableProactive(b *testing.B)    { benchExperiment(b, "proactive") }
func BenchmarkTableJitter(b *testing.B)       { benchExperiment(b, "jitter") }

func BenchmarkTableGlitch(b *testing.B)       { benchExperiment(b, "glitch") }
func BenchmarkTableAdaptive(b *testing.B)     { benchExperiment(b, "adaptive") }
func BenchmarkTableAdmission(b *testing.B)    { benchExperiment(b, "admission") }
func BenchmarkTableRobust(b *testing.B)       { benchExperiment(b, "robust") }
func BenchmarkTableSmartWeights(b *testing.B) { benchExperiment(b, "smartweights") }
func BenchmarkTableFairness(b *testing.B)     { benchExperiment(b, "fairness") }
